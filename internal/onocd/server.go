package onocd

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"reflect"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"photonoc/internal/apierr"
	"photonoc/internal/core"
	"photonoc/internal/ecc"
	"photonoc/internal/engine"
	"photonoc/internal/faultinject"
	"photonoc/internal/manager"
	"photonoc/internal/mc"
	"photonoc/internal/obs"
	"photonoc/internal/tune"
)

// Service defaults.
const (
	// DefaultMaxInFlight is the admission-control concurrency limit: the
	// evaluation routes admit at most this many requests at once and refuse
	// the rest with 429 + Retry-After.
	DefaultMaxInFlight = 64
	// DefaultRequestTimeout bounds one request's work; a request may lower
	// (never raise) it with ?timeout_ms=N.
	DefaultRequestTimeout = 30 * time.Second
	// DefaultMaxBodyBytes bounds a request body.
	DefaultMaxBodyBytes = 1 << 20
	// DefaultSlowRequest is the access-log threshold above which a finished
	// request additionally logs at warn level with its engine attribution.
	DefaultSlowRequest = time.Second
)

// Options configures a Server. The zero value serves the paper's
// configuration with production defaults.
type Options struct {
	// Config is the link configuration; the zero value means the paper's
	// defaults (exactly engine.New without WithConfig).
	Config core.LinkConfig
	// Schemes is the roster; nil means the paper's three schemes.
	Schemes []ecc.Code
	// Workers is the engine worker-pool size; 0 means GOMAXPROCS.
	Workers int
	// CacheEntries is the memo-cache capacity; 0 means the engine default.
	// A service without a cache makes no sense, so there is no disable knob.
	CacheEntries int
	// CacheShards fixes the LRU shard count; 0 scales with capacity.
	CacheShards int

	// MaxInFlight is the admission limit (0 = DefaultMaxInFlight).
	MaxInFlight int
	// RequestTimeout is the per-request deadline ceiling
	// (0 = DefaultRequestTimeout).
	RequestTimeout time.Duration
	// MaxBodyBytes bounds request bodies (0 = DefaultMaxBodyBytes).
	MaxBodyBytes int64

	// FaultInjector, when non-nil, wraps every /v1 route with the seeded
	// chaos middleware (cmd/onocd builds one from -fault-rate/-fault-seed).
	// nil — the default — adds no middleware and no per-request draw: the
	// production hot path is untouched.
	FaultInjector *faultinject.Injector

	// Logger receives the service's structured logs: one access-log line per
	// finished request (trace ID, route, status, bytes, engine attribution),
	// slow-request warnings, admission rejections, reload events. nil
	// discards everything, so embedders and tests opt in explicitly.
	Logger *slog.Logger
	// SlowRequest is the duration from which a finished request also logs a
	// warn-level slow_request line (0 = DefaultSlowRequest; negative
	// disables the slow log).
	SlowRequest time.Duration
	// EnablePprof mounts net/http/pprof under /debug/pprof/. The profiling
	// routes bypass admission control — a saturated server is exactly when a
	// profile is needed — so the flag is off by default and cmd/onocd gates
	// it behind -pprof.
	EnablePprof bool
	// GzipMinBytes is the buffered response size from which JSON responses
	// compress when the client accepts gzip (0 = DefaultGzipMinBytes;
	// negative disables compression entirely). NDJSON streams compress from
	// the first line regardless of size.
	GzipMinBytes int
}

// engineState is one immutable generation of the serving engine. Hot
// reload swaps the whole generation atomically; requests in flight keep
// the generation they started with, so a reload never mixes two
// configurations inside one response.
type engineState struct {
	eng      *engine.Engine
	mgr      *manager.Manager
	obs      *engineObserver
	loadedAt time.Time
}

// newEngineState builds one engine generation, instrumented with its own
// observer (histograms and per-shard counters start cold with the cache).
func newEngineState(opts Options, cfg core.LinkConfig) (*engineState, error) {
	o := newEngineObserver()
	eopts := []engine.Option{engine.WithObserver(o)}
	if !reflect.ValueOf(cfg).IsZero() {
		eopts = append(eopts, engine.WithConfig(cfg))
	}
	if opts.Schemes != nil {
		eopts = append(eopts, engine.WithSchemes(opts.Schemes...))
	}
	if opts.Workers != 0 {
		eopts = append(eopts, engine.WithWorkers(opts.Workers))
	}
	if opts.CacheEntries != 0 {
		eopts = append(eopts, engine.WithCache(opts.CacheEntries))
	}
	if opts.CacheShards != 0 {
		eopts = append(eopts, engine.WithCacheShards(opts.CacheShards))
	}
	eng, err := engine.New(eopts...)
	if err != nil {
		return nil, err
	}
	o.initShards(eng.CacheStats().Shards)
	ecfg := eng.Config()
	mgr, err := manager.NewWithEvaluator(&ecfg, eng.Schemes(), manager.PaperDAC(), eng)
	if err != nil {
		return nil, err
	}
	return &engineState{eng: eng, mgr: mgr, obs: o, loadedAt: time.Now()}, nil
}

// Server is the onocd HTTP service: the Engine behind JSON routes, with
// admission control, per-request deadlines, metrics and hot reload. Build
// one with NewServer and mount Handler on an http.Server.
type Server struct {
	opts  Options
	state atomic.Pointer[engineState]
	mux   *http.ServeMux
	sem   chan struct{}
	met   *metrics
	log   *slog.Logger

	started  time.Time
	reloads  atomic.Uint64
	draining atomic.Bool
}

// NewServer builds the service around a fresh Engine.
func NewServer(opts Options) (*Server, error) {
	if opts.MaxInFlight == 0 {
		opts.MaxInFlight = DefaultMaxInFlight
	}
	if opts.MaxInFlight < 1 {
		return nil, fmt.Errorf("%w: max in-flight %d must be positive", apierr.ErrInvalidConfig, opts.MaxInFlight)
	}
	if opts.RequestTimeout == 0 {
		opts.RequestTimeout = DefaultRequestTimeout
	}
	if opts.RequestTimeout < 0 {
		return nil, fmt.Errorf("%w: request timeout %v must be positive", apierr.ErrInvalidConfig, opts.RequestTimeout)
	}
	if opts.MaxBodyBytes == 0 {
		opts.MaxBodyBytes = DefaultMaxBodyBytes
	}
	if opts.SlowRequest == 0 {
		opts.SlowRequest = DefaultSlowRequest
	}
	if opts.Logger == nil {
		opts.Logger = obs.Nop()
	}
	st, err := newEngineState(opts, opts.Config)
	if err != nil {
		return nil, err
	}
	s := &Server{
		opts:    opts,
		mux:     http.NewServeMux(),
		sem:     make(chan struct{}, opts.MaxInFlight),
		met:     newMetrics(),
		log:     opts.Logger,
		started: time.Now(),
	}
	s.state.Store(st)
	s.routes()
	return s, nil
}

// Handler returns the service's root handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Engine returns the current engine generation (tests and the self-hosted
// load harness use it to read cache statistics).
func (s *Server) Engine() *engine.Engine { return s.state.Load().eng }

// Reload atomically swaps in a new engine generation built from cfg (the
// zero value reloads the original Options.Config — a roster/limits-only
// restart). In-flight requests finish on the generation they started
// with; the memo cache starts cold because the fingerprint may have
// changed. This is the SIGHUP path of cmd/onocd.
func (s *Server) Reload(cfg core.LinkConfig) error {
	if reflect.ValueOf(cfg).IsZero() {
		cfg = s.opts.Config
	}
	st, err := newEngineState(s.opts, cfg)
	if err != nil {
		return err
	}
	s.state.Store(st)
	s.reloads.Add(1)
	s.log.Info("engine_reloaded",
		"fingerprint", st.eng.ConfigFingerprint(),
		"reloads", s.reloads.Load())
	return nil
}

// SetDraining flips the health signal: a draining server answers
// /healthz with 503 so load balancers stop routing to it, while in-flight
// and even newly arriving requests still complete (http.Server.Shutdown
// does the actual connection draining).
func (s *Server) SetDraining(v bool) { s.draining.Store(v) }

// ListenLocal starts the server on an OS-assigned loopback port and
// returns the base URL. Tests, the self-hosted load harness and the
// benchmark runner share it.
func ListenLocal(opts Options) (*Server, *http.Server, string, error) {
	s, err := NewServer(opts)
	if err != nil {
		return nil, nil, "", err
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, nil, "", err
	}
	hs := &http.Server{Handler: s.Handler()}
	go hs.Serve(l)
	return s, hs, "http://" + l.Addr().String(), nil
}

// routes mounts every endpoint. The /v1 evaluation routes pass through
// admission control and the deadline middleware; the observability routes
// are exempt so a saturated server can still be inspected (and so chaos
// faults never hide the metrics a chaos run is graded on). With a
// FaultInjector configured, the chaos middleware wraps outside instrument:
// injected rejections never consume an admission slot, and truncation
// wraps the response writer under the streaming handlers' flusher.
func (s *Server) routes() {
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /statusz", s.handleStatusz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.v1("GET /v1/config", "/v1/config", false, false, s.handleConfig)

	s.v1("POST /v1/sweep", "/v1/sweep", true, false, s.handleSweep)
	s.v1("POST /v1/sweep/stream", "/v1/sweep/stream", true, true, s.handleSweepStream)
	s.v1("POST /v1/decide", "/v1/decide", true, false, s.handleDecide)
	s.v1("POST /v1/noc/eval", "/v1/noc/eval", true, false, s.handleNoCEval)
	s.v1("POST /v1/noc/batch", "/v1/noc/batch", true, true, s.handleNoCBatch)
	s.v1("POST /v1/noc/sweep", "/v1/noc/sweep", true, true, s.handleNoCSweep)
	s.v1("POST /v1/noc/sim", "/v1/noc/sim", true, false, s.handleNoCSim)
	s.v1("POST /v1/noc/tune", "/v1/noc/tune", true, true, s.handleNoCTune)
	s.v1("POST /v1/validate", "/v1/validate", true, false, s.handleValidate)

	// The profiling routes are deliberately outside instrument: no admission
	// slot (a saturated server is exactly when a profile is wanted), no
	// deadline (a 30s CPU profile outlives the request timeout), no gzip
	// (the protobuf profiles are already compressed).
	if s.opts.EnablePprof {
		s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
}

// v1 mounts one evaluation route with the full middleware chain, outermost
// first: gzip (so everything inside writes uncompressed bytes), the chaos
// injector (injected rejections never consume an admission slot; truncation
// budgets count pre-compression bytes), then instrument (tracing, logging,
// admission, deadline, metrics) around the handler body.
func (s *Server) v1(pattern, route string, admission, streaming bool, fn handlerFunc) {
	s.mux.Handle(pattern, s.withGzip(s.withFaults(s.instrument(route, admission, fn), streaming)))
}

// withFaults wraps a route with the chaos middleware when one is
// configured; streaming routes are additionally eligible for mid-stream
// truncation faults. A nil injector returns the handler unchanged.
func (s *Server) withFaults(h http.Handler, streaming bool) http.Handler {
	if s.opts.FaultInjector == nil {
		return h
	}
	return s.opts.FaultInjector.Middleware(h, streaming)
}

// statusWriter records the status code actually sent and the body bytes
// written (pre-compression), for metrics, the access log, and so the error
// path knows whether headers are already gone (streaming).
type statusWriter struct {
	http.ResponseWriter
	code  int
	bytes int64
}

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(b)
	w.bytes += int64(n)
	return n, err
}

// Flush forwards to the underlying flusher (NDJSON streaming).
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// handlerFunc is a route body: it runs under the request deadline against
// one engine generation and either writes its own (streaming) response or
// returns an error to be enveloped.
type handlerFunc func(ctx context.Context, st *engineState, w *statusWriter, r *http.Request) error

// instrument wraps a route body with the service middleware: trace identity
// (continue an incoming W3C traceparent or start a fresh trace), a
// request-scoped child logger and stats accumulator in the context, the
// in-flight gauge, admission control, the per-request deadline, error
// enveloping, request accounting, the access log and the slow-request log.
func (s *Server) instrument(route string, admission bool, fn handlerFunc) http.Handler {
	return http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		start := time.Now()

		// Trace identity: a valid incoming traceparent makes this request's
		// span a child in the caller's trace; anything else roots a new one.
		var sc obs.SpanContext
		if parent, err := obs.ParseTraceparent(r.Header.Get("traceparent")); err == nil {
			sc = parent.Child()
		} else {
			sc = obs.NewSpanContext()
		}
		// Echo the server's span back so even curl runs can join logs.
		rw.Header().Set("Traceparent", sc.Traceparent())

		w := &statusWriter{ResponseWriter: rw}
		reqLog := s.log.With(
			"trace_id", sc.TraceID.String(),
			"span_id", sc.SpanID.String(),
			"route", route)
		stats := &obs.RequestStats{}

		s.met.inFlight.Add(1)
		defer func() {
			elapsed := time.Since(start)
			s.met.inFlight.Add(-1)
			s.met.observe(route, w.code, elapsed)
			s.met.recordRequest(requestRecord{
				Route:      route,
				TraceID:    sc.TraceID.String(),
				Status:     w.code,
				Duration:   elapsed,
				Bytes:      w.bytes,
				ColdSolves: stats.ColdSolves.Load(),
				Time:       start,
			})
			attrs := []any{
				"method", r.Method,
				"status", w.code,
				"duration_ms", float64(elapsed.Microseconds()) / 1e3,
				"bytes", w.bytes,
				"cold_solves", stats.ColdSolves.Load(),
				"cold_solve_ms", float64(stats.ColdSolveTime().Microseconds()) / 1e3,
				"cache_hits", stats.CacheHits.Load(),
				"shared_solves", stats.SharedSolves.Load(),
				"session_reuses", stats.SessionReuses.Load(),
			}
			reqLog.Info("request", attrs...)
			if s.opts.SlowRequest > 0 && elapsed >= s.opts.SlowRequest {
				reqLog.Warn("slow_request", attrs...)
			}
		}()

		if admission {
			select {
			case s.sem <- struct{}{}:
				defer func() { <-s.sem }()
			default:
				s.met.admissionRejected.Add(1)
				reqLog.Warn("admission_rejected", "max_in_flight", s.opts.MaxInFlight)
				w.Header().Set("Retry-After", "1")
				writeError(w, fmt.Errorf("%w: %d requests already in flight", apierr.ErrOverloaded, s.opts.MaxInFlight))
				return
			}
		}

		ctx, cancel, err := s.requestContext(r)
		if err != nil {
			writeError(w, err)
			return
		}
		defer cancel()
		ctx = obs.ContextWithSpan(ctx, sc)
		ctx = obs.ContextWithLogger(ctx, reqLog)
		ctx = obs.ContextWithStats(ctx, stats)

		r.Body = http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
		if err := fn(ctx, s.state.Load(), w, r.WithContext(ctx)); err != nil {
			// Map context errors through the request deadline: the engine
			// returns ctx.Err() verbatim, and a deadline the server imposed
			// must surface as 504 even when the client also went away.
			if errors.Is(err, context.Canceled) && ctx.Err() != nil {
				err = ctx.Err()
			}
			reqLog.Warn("request_error", "error", err.Error())
			if w.code != 0 {
				return // headers sent (mid-stream failure); terminal NDJSON line already carries the error
			}
			writeError(w, err)
		}
	})
}

// requestContext derives the request deadline: the server ceiling, lowered
// (never raised) by an explicit ?timeout_ms=N.
func (s *Server) requestContext(r *http.Request) (context.Context, context.CancelFunc, error) {
	timeout := s.opts.RequestTimeout
	if v := r.URL.Query().Get("timeout_ms"); v != "" {
		ms, err := strconv.ParseInt(v, 10, 64)
		if err != nil || ms <= 0 {
			return nil, nil, fmt.Errorf("%w: timeout_ms %q must be a positive integer", apierr.ErrInvalidInput, v)
		}
		if d := time.Duration(ms) * time.Millisecond; d < timeout {
			timeout = d
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	return ctx, cancel, nil
}

// writeError writes the stable JSON error envelope.
func writeError(w http.ResponseWriter, err error) {
	status, env := apierr.EnvelopeFor(err)
	writeJSON(w, status, env)
}

// writeJSON writes one JSON response body.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client gone; nothing to do
}

// decodeJSON strictly decodes a request body: unknown fields, trailing
// garbage and oversized bodies are all invalid input.
func decodeJSON(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var maxErr *http.MaxBytesError
		if errors.As(err, &maxErr) {
			return fmt.Errorf("%w: request body exceeds %d bytes", apierr.ErrInvalidInput, maxErr.Limit)
		}
		return fmt.Errorf("%w: malformed request body: %v", apierr.ErrInvalidInput, err)
	}
	if dec.More() {
		return fmt.Errorf("%w: trailing data after request body", apierr.ErrInvalidInput)
	}
	return nil
}

// --- observability routes ---

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, "ok\n") //nolint:errcheck
}

// StatusResponse is the body of GET /statusz.
type StatusResponse struct {
	Service          string            `json:"service"`
	UptimeSec        float64           `json:"uptime_sec"`
	Fingerprint      string            `json:"fingerprint"`
	EngineLoadedAt   time.Time         `json:"engine_loaded_at"`
	Reloads          uint64            `json:"reloads"`
	Schemes          []string          `json:"schemes"`
	Workers          int               `json:"workers"`
	MaxInFlight      int               `json:"max_in_flight"`
	InFlight         int64             `json:"in_flight"`
	RequestTimeoutMS int64             `json:"request_timeout_ms"`
	Draining         bool              `json:"draining"`
	Cache            engine.CacheStats `json:"cache"`
	// SlowestRequests are exemplars mined from the recent-request ring: the
	// slowest recent requests per route, each carrying its trace ID so a
	// latency spike links directly into the structured logs.
	SlowestRequests []SlowRequest `json:"slowest_requests,omitempty"`
}

// SlowRequest is one slow-request exemplar on /statusz.
type SlowRequest struct {
	Route      string    `json:"route"`
	TraceID    string    `json:"trace_id"`
	Status     int       `json:"status"`
	DurationMS float64   `json:"duration_ms"`
	Bytes      int64     `json:"bytes"`
	ColdSolves uint64    `json:"cold_solves"`
	Time       time.Time `json:"time"`
}

// slowExemplarsPerRoute bounds how many exemplars each route contributes.
const slowExemplarsPerRoute = 3

func (s *Server) handleStatusz(w http.ResponseWriter, r *http.Request) {
	st := s.state.Load()
	var slow []SlowRequest
	for _, rec := range s.met.slowestRecent(slowExemplarsPerRoute) {
		slow = append(slow, SlowRequest{
			Route:      rec.Route,
			TraceID:    rec.TraceID,
			Status:     rec.Status,
			DurationMS: float64(rec.Duration.Microseconds()) / 1e3,
			Bytes:      rec.Bytes,
			ColdSolves: rec.ColdSolves,
			Time:       rec.Time,
		})
	}
	writeJSON(w, http.StatusOK, StatusResponse{
		Service:          "onocd",
		UptimeSec:        time.Since(s.started).Seconds(),
		Fingerprint:      st.eng.ConfigFingerprint(),
		EngineLoadedAt:   st.loadedAt,
		Reloads:          s.reloads.Load(),
		Schemes:          schemeNames(st.eng.Schemes()),
		Workers:          st.eng.Workers(),
		MaxInFlight:      s.opts.MaxInFlight,
		InFlight:         s.met.inFlight.Load(),
		RequestTimeoutMS: s.opts.RequestTimeout.Milliseconds(),
		Draining:         s.draining.Load(),
		Cache:            st.eng.CacheStats(),
		SlowestRequests:  slow,
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.met.writeTo(w)
	st := s.state.Load()
	cs := st.eng.CacheStats()
	counter(w, "onocd_engine_reloads_total", "Hot configuration reloads.", s.reloads.Load())
	counter(w, "onocd_cache_hits_total", "Memo-cache hits.", cs.Hits)
	counter(w, "onocd_cache_misses_total", "Memo-cache misses.", cs.Misses)
	counter(w, "onocd_cache_cold_solves_total", "Solves that ran the compiled pipeline.", cs.ColdSolves)
	counter(w, "onocd_cache_shared_solves_total", "Evaluations served by joining an in-flight solve (singleflight).", cs.SharedSolves)
	counter(w, "onocd_cache_session_reuses_total", "Per-cell solves avoided by incremental session diffing.", cs.SessionReuses)
	gauge(w, "onocd_cache_entries", "Memoized operating points.", float64(cs.Entries))
	gauge(w, "onocd_cache_capacity", "Memo-cache capacity.", float64(cs.Capacity))
	gauge(w, "onocd_cache_shards", "Independently locked LRU shards.", float64(cs.Shards))
	gauge(w, "onocd_cache_cold_solve_seconds_total", "Cumulative wall time in cold solves.", cs.ColdSolveTime.Seconds())
	st.obs.writeTo(w)
	writeRuntimeMetrics(w)
	if inj := s.opts.FaultInjector; inj != nil {
		fc := inj.Counts()
		counter(w, "onocd_fault_requests_total", "Requests seen by the chaos middleware.", fc.Requests)
		counter(w, "onocd_fault_injected_total", "Faults injected, all modes.", fc.Faults())
		counter(w, "onocd_fault_latency_total", "Injected latency faults.", fc.Latencies)
		counter(w, "onocd_fault_reject_total", "Injected 429 rejections.", fc.Rejects)
		counter(w, "onocd_fault_unavailable_total", "Injected 503 responses.", fc.Unavailables)
		counter(w, "onocd_fault_reset_total", "Injected connection resets.", fc.Resets)
		counter(w, "onocd_fault_truncate_total", "Injected mid-stream truncations.", fc.Truncates)
	}
}

func schemeNames(codes []ecc.Code) []string {
	names := make([]string, len(codes))
	for i, c := range codes {
		names[i] = c.Name()
	}
	return names
}

// --- evaluation routes ---

// handleConfig serves the engine configuration with an ETag keyed by the
// generation fingerprint: the response only changes on hot reload, so
// revalidation (Cache-Control: no-cache) lets clients hold a cached copy
// and pay a bodyless 304 per poll.
func (s *Server) handleConfig(ctx context.Context, st *engineState, w *statusWriter, r *http.Request) error {
	etag := `"` + st.eng.ConfigFingerprint() + `"`
	w.Header().Set("ETag", etag)
	w.Header().Set("Cache-Control", "no-cache")
	if etagMatches(r.Header.Get("If-None-Match"), etag) {
		w.WriteHeader(http.StatusNotModified)
		return nil
	}
	writeJSON(w, http.StatusOK, ConfigResponse{
		Fingerprint: st.eng.ConfigFingerprint(),
		Schemes:     schemeNames(st.eng.Schemes()),
		Workers:     st.eng.Workers(),
		Config:      st.eng.Config(),
	})
	return nil
}

// etagMatches reports whether an If-None-Match header matches etag, using
// the weak comparison of RFC 9110 §8.8.3.2: a W/ prefix is ignored and "*"
// matches any current representation.
func etagMatches(header, etag string) bool {
	for _, c := range strings.Split(header, ",") {
		c = strings.TrimPrefix(strings.TrimSpace(c), "W/")
		if c == etag || c == "*" {
			return true
		}
	}
	return false
}

func (s *Server) handleSweep(ctx context.Context, st *engineState, w *statusWriter, r *http.Request) error {
	var req SweepRequest
	if err := decodeJSON(r, &req); err != nil {
		return err
	}
	codes, err := ResolveSchemes(req.Schemes)
	if err != nil {
		return err
	}
	evs, err := st.eng.Sweep(ctx, codes, req.TargetBERs)
	if err != nil {
		return err
	}
	resp := SweepResponse{Evaluations: make([]Evaluation, len(evs))}
	for i, ev := range evs {
		resp.Evaluations[i] = toWireEval(ev)
	}
	writeJSON(w, http.StatusOK, resp)
	return nil
}

// handleSweepStream streams one NDJSON StreamItem per grid point, in the
// deterministic batch order, flushing per line. A mid-stream failure
// arrives as a terminal line with Error set (the HTTP status is already
// 200 by then — NDJSON semantics).
func (s *Server) handleSweepStream(ctx context.Context, st *engineState, w *statusWriter, r *http.Request) error {
	var req SweepRequest
	if err := decodeJSON(r, &req); err != nil {
		return err
	}
	codes, err := ResolveSchemes(req.Schemes)
	if err != nil {
		return err
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	for res := range st.eng.SweepStream(ctx, codes, req.TargetBERs) {
		item := StreamItem{Index: res.Index}
		if res.Err != nil {
			_, body := apierr.EnvelopeFor(res.Err)
			item.Error = &body.Error
		} else {
			ev := toWireEval(res.Evaluation)
			item.Evaluation = &ev
		}
		if err := enc.Encode(item); err != nil {
			return nil // client went away mid-stream
		}
		w.Flush()
	}
	return nil
}

func (s *Server) handleDecide(ctx context.Context, st *engineState, w *statusWriter, r *http.Request) error {
	var req DecideRequest
	if err := decodeJSON(r, &req); err != nil {
		return err
	}
	obj, err := parseObjective(req.Objective)
	if err != nil {
		return err
	}
	dec, err := st.mgr.ConfigureCtx(ctx, manager.Requirements{
		TargetBER: req.TargetBER,
		MaxCT:     req.MaxCT,
		Objective: obj,
	})
	if err != nil {
		return err
	}
	writeJSON(w, http.StatusOK, DecideResponse{
		Eval:                 toWireEval(dec.Eval),
		DACCode:              dec.DACCode,
		QuantizedOpticalW:    dec.QuantizedOpticalW,
		QuantizedLaserPowerW: dec.QuantizedLaserPowerW,
		QuantizationWasteW:   dec.QuantizationWasteW,
	})
	return nil
}

func (s *Server) handleNoCEval(ctx context.Context, st *engineState, w *statusWriter, r *http.Request) error {
	var req NoCRequest
	if err := decodeJSON(r, &req); err != nil {
		return err
	}
	cfg, err := req.topology()
	if err != nil {
		return err
	}
	opts, err := req.evalOptions()
	if err != nil {
		return err
	}
	res, err := st.eng.Network(ctx, cfg, opts)
	if err != nil {
		return err
	}
	writeJSON(w, http.StatusOK, toWireNoC(res))
	return nil
}

// boolParam parses a "0"/"1"/"false"/"true" query parameter (empty means
// false).
func boolParam(r *http.Request, name string) (bool, error) {
	switch v := r.URL.Query().Get(name); v {
	case "", "0", "false":
		return false, nil
	case "1", "true":
		return true, nil
	default:
		return false, fmt.Errorf("%w: %s %q must be 0|1|false|true", apierr.ErrInvalidInput, name, v)
	}
}

// startIndexParam parses the ?start_index=N resume cursor of the streaming
// routes: the server recomputes the full stream but only emits items with
// Index >= N, so a client that lost a connection mid-stream can fetch
// exactly the missing suffix. Skipped prefix work is warm — the memo cache
// and worker-session diffs already hold the first pass's cells.
func startIndexParam(r *http.Request) (int, error) {
	v := r.URL.Query().Get("start_index")
	if v == "" {
		return 0, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("%w: start_index %q must be a non-negative integer", apierr.ErrInvalidInput, v)
	}
	return n, nil
}

// handleNoCBatch evaluates a candidate population: the request body is an
// NDJSON (or concatenated-JSON) stream of NoCBatchItem lines, the response
// one NDJSON NoCStreamItem per candidate in population order, backed by
// Engine.NetworkBatchStream — neighboring candidates are diffed
// incrementally inside the worker sessions, so a mutate-one-knob autotuner
// population amortizes both HTTP overhead and per-cell solves.
//
// ?start_index=N resumes an interrupted stream at item N;
// ?continue_on_error=1 switches to partial-failure mode, where a failed
// candidate (including one that failed wire-level conversion) becomes an
// indexed Partial error item instead of ending the stream.
func (s *Server) handleNoCBatch(ctx context.Context, st *engineState, w *statusWriter, r *http.Request) error {
	start, err := startIndexParam(r)
	if err != nil {
		return err
	}
	partial, err := boolParam(r, "continue_on_error")
	if err != nil {
		return err
	}
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var cands []engine.NetworkCandidate
	// convFails maps candidate index → wire-conversion failure. In partial
	// mode a bad candidate keeps its population slot via a placeholder (the
	// zero candidate fails engine validation immediately, without solving
	// anything) and the recorded cause overrides the placeholder's error in
	// the emitted item. Malformed NDJSON framing stays terminal in both
	// modes: once the decoder loses sync, indices after it are meaningless.
	var convFails map[int]error
	for {
		var it NoCBatchItem
		if err := dec.Decode(&it); err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			var maxErr *http.MaxBytesError
			if errors.As(err, &maxErr) {
				return fmt.Errorf("%w: request body exceeds %d bytes", apierr.ErrInvalidInput, maxErr.Limit)
			}
			return fmt.Errorf("%w: malformed candidate %d: %v", apierr.ErrInvalidInput, len(cands), err)
		}
		cand, err := it.candidate()
		if err != nil {
			if !partial {
				return fmt.Errorf("candidate %d: %w", len(cands), err)
			}
			if convFails == nil {
				convFails = make(map[int]error)
			}
			convFails[len(cands)] = fmt.Errorf("candidate %d: %w", len(cands), err)
			cands = append(cands, engine.NetworkCandidate{})
			continue
		}
		cands = append(cands, cand)
	}
	if len(cands) == 0 {
		return fmt.Errorf("%w: empty candidate population", apierr.ErrInvalidInput)
	}
	if start >= len(cands) {
		return fmt.Errorf("%w: start_index %d beyond population of %d", apierr.ErrInvalidInput, start, len(cands))
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	for res := range st.eng.NetworkBatchStream(ctx, cands, engine.BatchOptions{ContinueOnError: partial}) {
		item := NoCStreamItem{Index: res.Index, TargetBER: res.TargetBER}
		if res.Err != nil {
			errCause := res.Err
			var ce *engine.CandidateError
			if errors.As(res.Err, &ce) {
				item.Partial = true
				if oe, ok := convFails[ce.Index]; ok {
					errCause = oe
				}
			}
			_, body := apierr.EnvelopeFor(errCause)
			item.Error = &body.Error
		} else {
			wr := toWireNoC(res.Result)
			item.Result = &wr
		}
		if item.Index < start && (item.Error == nil || item.Partial) {
			continue // resumed stream: the client already has this item
		}
		if err := enc.Encode(item); err != nil {
			return nil // client went away mid-stream
		}
		w.Flush()
	}
	return nil
}

// handleNoCSweep streams one NDJSON NoCStreamItem per target BER, reusing
// the engine's streaming network sweep. ?start_index=N resumes an
// interrupted stream at grid point N (the skipped prefix re-solves warm
// through the memo cache).
func (s *Server) handleNoCSweep(ctx context.Context, st *engineState, w *statusWriter, r *http.Request) error {
	start, err := startIndexParam(r)
	if err != nil {
		return err
	}
	var req NoCRequest
	if err := decodeJSON(r, &req); err != nil {
		return err
	}
	cfg, err := req.topology()
	if err != nil {
		return err
	}
	opts, err := req.evalOptions()
	if err != nil {
		return err
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	for res := range st.eng.NetworkSweepStream(ctx, cfg, req.TargetBERs, opts) {
		item := NoCStreamItem{Index: res.Index, TargetBER: res.TargetBER}
		if res.Err != nil {
			_, body := apierr.EnvelopeFor(res.Err)
			item.Error = &body.Error
		} else {
			wr := toWireNoC(res.Result)
			item.Result = &wr
		}
		if item.Index < start && item.Error == nil {
			continue // resumed stream: the client already has this item
		}
		if err := enc.Encode(item); err != nil {
			return nil
		}
		w.Flush()
	}
	return nil
}

// errClientGone marks a streaming write that failed because the client
// disconnected: the campaign aborts, but the handler exits cleanly.
var errClientGone = errors.New("onocd: client went away mid-stream")

// handleNoCTune runs one autotuner campaign (internal/tune) against the
// daemon's engine, streaming one NDJSON NoCTuneItem per generation — the
// archive front after that generation's batch evaluation — plus a terminal
// summary item at Index = generations. Campaigns are deterministic from
// the request seed, so ?start_index=N resumes an interrupted stream by
// replaying the campaign (warm through the memo cache) and emitting only
// the missing suffix. Option errors surface before any output as a plain
// HTTP error; mid-campaign failures (cancellation, deadline) arrive as a
// terminal Error line under the already-committed 200.
func (s *Server) handleNoCTune(ctx context.Context, st *engineState, w *statusWriter, r *http.Request) error {
	start, err := startIndexParam(r)
	if err != nil {
		return err
	}
	var req NoCTuneRequest
	if err := decodeJSON(r, &req); err != nil {
		return err
	}
	opts, err := req.options()
	if err != nil {
		return err
	}
	gens := opts.Generations
	if gens == 0 {
		gens = tune.DefaultGenerations
	}
	if start > gens {
		return fmt.Errorf("%w: start_index %d beyond campaign stream of %d items", apierr.ErrInvalidInput, start, gens+1)
	}
	enc := json.NewEncoder(w)
	streamed := false
	done := 0
	opts.OnGeneration = func(gen int, front []tune.Point) error {
		if !streamed {
			// Defer the header to the first generation so option validation
			// inside tune.Run still yields a proper HTTP error status.
			w.Header().Set("Content-Type", "application/x-ndjson")
			streamed = true
		}
		done = gen + 1
		if gen < start {
			return nil // resumed stream: the client already has this item
		}
		item := NoCTuneItem{Index: gen, Front: toWireTuneFront(front)}
		if err := enc.Encode(item); err != nil {
			return errClientGone
		}
		w.Flush()
		return nil
	}
	res, err := tune.Run(ctx, st.eng, opts)
	if err != nil {
		if errors.Is(err, errClientGone) {
			return nil
		}
		if !streamed {
			return err // failed before any output: plain HTTP error
		}
		_, body := apierr.EnvelopeFor(err)
		if encErr := enc.Encode(NoCTuneItem{Index: done, Error: &body.Error}); encErr == nil {
			w.Flush()
		}
		return nil
	}
	sum := TuneSummary(res)
	item := NoCTuneItem{Index: res.Generations, Summary: &sum}
	if err := enc.Encode(item); err != nil {
		return nil
	}
	w.Flush()
	return nil
}

func (s *Server) handleNoCSim(ctx context.Context, st *engineState, w *statusWriter, r *http.Request) error {
	var req NoCRequest
	if err := decodeJSON(r, &req); err != nil {
		return err
	}
	cfg, err := req.topology()
	if err != nil {
		return err
	}
	evalOpts, err := req.evalOptions()
	if err != nil {
		return err
	}
	simOpts := engine.NetworkSimOptions{
		TargetBER:               req.TargetBER,
		Objective:               evalOpts.Objective,
		DAC:                     evalOpts.DAC,
		Traffic:                 evalOpts.Traffic,
		InjectionRateBitsPerSec: req.RateBitsPerSec,
		MessageBits:             req.MessageBits,
		Messages:                req.Messages,
		Seed:                    req.Seed,
		MaxQueueDepth:           req.MaxQueueDepth,
	}
	res, err := st.eng.SimulateNetwork(ctx, cfg, simOpts)
	if err != nil {
		return err
	}
	writeJSON(w, http.StatusOK, toWireSim(res))
	return nil
}

func (s *Server) handleValidate(ctx context.Context, st *engineState, w *statusWriter, r *http.Request) error {
	var req ValidateRequest
	if err := decodeJSON(r, &req); err != nil {
		return err
	}
	code, ok := ecc.SchemeByName(req.Scheme)
	if !ok {
		return fmt.Errorf("%w: unknown scheme %q", apierr.ErrInvalidInput, req.Scheme)
	}
	res, err := st.eng.ValidateMC(ctx, code, req.RawBER, mc.Options{
		Frames:       req.Frames,
		TargetRelErr: req.TargetRelErr,
		Shards:       req.Shards,
		Seed:         req.Seed,
	})
	if err != nil {
		return err
	}
	writeJSON(w, http.StatusOK, res)
	return nil
}
