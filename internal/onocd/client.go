package onocd

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"sync"

	"photonoc/internal/apierr"
	"photonoc/internal/core"
	"photonoc/internal/ecc"
	"photonoc/internal/engine"
	"photonoc/internal/mc"
	"photonoc/internal/netsim"
	"photonoc/internal/noc"
	"photonoc/internal/obs"
	"photonoc/internal/resilience"
	"photonoc/internal/tune"
)

// Client is a typed onocd client. Errors decoded from the daemon's JSON
// envelope round-trip the package's typed sentinels, so errors.Is works on
// a remote failure exactly as it would in process. Client implements
// core.Evaluator, which is what lets onocsim push per-transfer manager
// decisions through a remote daemon.
//
// Every call is resilient by default: retryable failures (429/503/504,
// transport errors, truncated streams) are retried with capped
// exponential backoff and full jitter, honoring the server's Retry-After
// as a delay floor, behind a circuit breaker that fails fast while the
// daemon is down. Every daemon route is a pure, deterministic evaluation,
// so retrying a request that may already have executed is always safe.
// Interrupted NDJSON streams resume from the last delivered item via
// ?start_index. Stats snapshots the counters.
type Client struct {
	// Base is the daemon's base URL, e.g. "http://127.0.0.1:9137".
	Base string
	// HTTP is the transport; nil means http.DefaultClient.
	HTTP *http.Client
	// Retry is the backoff policy; nil defaults on first use. Set
	// resilience.NewRetrier(resilience.NoRetry()) for fail-fast semantics
	// (a first failure is final, but error typing is unchanged).
	Retry *resilience.Retrier
	// Breaker is the circuit breaker; nil defaults on first use.
	Breaker *resilience.Breaker
	// Logger receives the client's structured resilience logs: one line per
	// failed attempt, retry, breaker fail-fast, and stream resume, each
	// carrying the request's trace ID and the attempt's span ID — the same
	// identifiers the daemon's access log records, so a chaos run is
	// reconstructable from the two logs joined on trace_id. nil discards.
	Logger *slog.Logger

	// mu guards the resilience counters and the revalidation cache below:
	// the last /v1/config body and its ETag, served back on a 304.
	mu        sync.Mutex
	stats     ClientStats
	configTag string
	config    ConfigResponse
}

// NewClient builds a client for a daemon base URL.
func NewClient(base string) *Client {
	return &Client{Base: strings.TrimRight(base, "/")}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

func (c *Client) logger() *slog.Logger {
	if c.Logger != nil {
		return c.Logger
	}
	return obs.Nop()
}

// setTraceparent propagates the context's current span — the attempt span
// minted by withRetries — onto the outbound request, so the daemon's access
// log joins this attempt under the same trace ID.
func setTraceparent(ctx context.Context, req *http.Request) {
	if sc, ok := obs.SpanFromContext(ctx); ok {
		req.Header.Set("Traceparent", sc.Traceparent())
	}
}

// send issues one HTTP request and returns the response on HTTP success; a
// non-2xx status or a request-level failure comes back as a typed error
// (Retry-After-decorated when the server set a retry horizon).
func (c *Client) send(ctx context.Context, method, path, contentType string, body []byte) (*http.Response, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.Base+path, rd)
	if err != nil {
		return nil, err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	setTraceparent(ctx, req)
	resp, err := c.httpClient().Do(req)
	if err != nil {
		if cerr := ctx.Err(); cerr != nil {
			return nil, cerr
		}
		return nil, fmt.Errorf("%w: %s %s: %v", errTransport, method, path, err)
	}
	if resp.StatusCode/100 != 2 {
		defer resp.Body.Close()
		derr := decodeError(resp)
		if floor := retryAfterFloor(resp); floor > 0 && apierr.Retryable(derr) {
			return nil, &retryAfterError{err: derr, floor: floor}
		}
		return nil, derr
	}
	return resp, nil
}

// roundTrip issues one request under the retry/breaker loop and decodes
// either the response body or the error envelope into a typed error.
func (c *Client) roundTrip(ctx context.Context, method, path string, in, out any) error {
	var raw []byte
	contentType := ""
	if in != nil {
		var err error
		if raw, err = json.Marshal(in); err != nil {
			return fmt.Errorf("onocd: encode %s request: %w", path, err)
		}
		contentType = "application/json"
	}
	return c.withRetries(ctx, func(ctx context.Context) error {
		resp, err := c.send(ctx, method, path, contentType, raw)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if out == nil {
			io.Copy(io.Discard, resp.Body) //nolint:errcheck
			return nil
		}
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			// A 2xx body that does not decode is a torn or corrupted
			// response, not a server verdict — classify as transport.
			return fmt.Errorf("%w: decode %s response: %v", errTransport, path, err)
		}
		return nil
	})
}

// decodeError turns a non-2xx response into a typed error via the stable
// envelope; a body that is not an envelope degrades to a plain error.
func decodeError(resp *http.Response) error {
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	var env apierr.Envelope
	if err := json.Unmarshal(raw, &env); err == nil && env.Error.Code != "" {
		return apierr.FromEnvelope(env)
	}
	return fmt.Errorf("onocd: remote error (HTTP %d): %s", resp.StatusCode, bytes.TrimSpace(raw))
}

// Config fetches the daemon's engine configuration and roster. The client
// revalidates with If-None-Match against the daemon's generation-keyed
// ETag, so steady-state polls cost a bodyless 304 and are served from the
// cached copy; a hot reload changes the fingerprint and refetches.
func (c *Client) Config(ctx context.Context) (ConfigResponse, error) {
	var out ConfigResponse
	err := c.withRetries(ctx, func(ctx context.Context) error {
		c.mu.Lock()
		tag, cached := c.configTag, c.config
		c.mu.Unlock()
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+"/v1/config", nil)
		if err != nil {
			return err
		}
		if tag != "" {
			req.Header.Set("If-None-Match", tag)
		}
		setTraceparent(ctx, req)
		resp, err := c.httpClient().Do(req)
		if err != nil {
			if cerr := ctx.Err(); cerr != nil {
				return cerr
			}
			return fmt.Errorf("%w: GET /v1/config: %v", errTransport, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode == http.StatusNotModified && tag != "" {
			io.Copy(io.Discard, resp.Body) //nolint:errcheck
			out = cached
			return nil
		}
		if resp.StatusCode/100 != 2 {
			return decodeError(resp)
		}
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			return fmt.Errorf("%w: decode /v1/config response: %v", errTransport, err)
		}
		if tag := resp.Header.Get("ETag"); tag != "" {
			c.mu.Lock()
			c.configTag, c.config = tag, out
			c.mu.Unlock()
		}
		return nil
	})
	if err != nil {
		return ConfigResponse{}, err
	}
	return out, nil
}

// Statusz fetches the daemon status page.
func (c *Client) Statusz(ctx context.Context) (StatusResponse, error) {
	var out StatusResponse
	err := c.roundTrip(ctx, http.MethodGet, "/statusz", nil, &out)
	return out, err
}

// Healthz reports whether the daemon answers its health probe.
func (c *Client) Healthz(ctx context.Context) error {
	return c.roundTrip(ctx, http.MethodGet, "/healthz", nil, nil)
}

// Sweep runs a batch sweep on the daemon.
func (c *Client) Sweep(ctx context.Context, req SweepRequest) (SweepResponse, error) {
	var out SweepResponse
	err := c.roundTrip(ctx, http.MethodPost, "/v1/sweep", req, &out)
	return out, err
}

// Decide runs one manager configuration decision on the daemon.
func (c *Client) Decide(ctx context.Context, req DecideRequest) (DecideResponse, error) {
	var out DecideResponse
	err := c.roundTrip(ctx, http.MethodPost, "/v1/decide", req, &out)
	return out, err
}

// NetworkEval evaluates a topology on the daemon and rebuilds the
// in-process result.
func (c *Client) NetworkEval(ctx context.Context, req NoCRequest) (noc.Result, error) {
	var out NoCResult
	if err := c.roundTrip(ctx, http.MethodPost, "/v1/noc/eval", req, &out); err != nil {
		return noc.Result{}, err
	}
	return out.Core()
}

// NetworkSweep streams a network sweep from the daemon, invoking fn per
// NDJSON line in batch (BER) order. A terminal stream error is returned as
// the typed error it carried. An interrupted stream is resumed
// transparently from the last delivered item via ?start_index, so fn sees
// every index exactly once regardless of how many reconnects it took.
func (c *Client) NetworkSweep(ctx context.Context, req NoCRequest, fn func(int, float64, noc.Result) error) error {
	raw, err := json.Marshal(req)
	if err != nil {
		return fmt.Errorf("onocd: encode sweep request: %w", err)
	}
	return c.streamNoC(ctx, "/v1/noc/sweep", "application/json", raw, len(req.TargetBERs),
		func(item NoCStreamItem) error {
			if item.Partial {
				return fmt.Errorf("onocd: unexpected partial item %d on /v1/noc/sweep", item.Index)
			}
			res, err := item.Result.Core()
			if err != nil {
				return err
			}
			return fn(item.Index, item.TargetBER, res)
		})
}

// wireStreamItem is the contract shared by the resumable NDJSON stream
// line types: an index cursor into the full (unresumed) stream plus a
// way to recognize a terminal error line.
type wireStreamItem interface {
	itemIndex() int
	// terminal reports the error body that ends the stream, nil otherwise.
	terminal() *apierr.ErrorBody
}

func (i NoCStreamItem) itemIndex() int { return i.Index }

// terminal implements wireStreamItem: a Partial error is one candidate's
// failure record, not the end of the stream.
func (i NoCStreamItem) terminal() *apierr.ErrorBody {
	if i.Error != nil && !i.Partial {
		return i.Error
	}
	return nil
}

func (i NoCTuneItem) itemIndex() int { return i.Index }

// terminal implements wireStreamItem: every tune error line is terminal.
func (i NoCTuneItem) terminal() *apierr.ErrorBody { return i.Error }

// streamNoC runs one resumable NoCStreamItem call; see streamItems.
func (c *Client) streamNoC(ctx context.Context, path, contentType string, body []byte, expect int, onItem func(NoCStreamItem) error) error {
	return streamItems(c, ctx, path, contentType, body, expect, onItem)
}

// streamItems runs one resumable NDJSON stream call: POST body to path,
// scan item lines through onItem, and on interruption reconnect with
// ?start_index so the daemon replays only the missing suffix. The stream
// is complete when expect items have been delivered (or a terminal item
// ended it); a clean EOF short of that is a truncation like any other —
// some cuts land exactly on a line boundary.
func streamItems[T wireStreamItem](c *Client, ctx context.Context, path, contentType string, body []byte, expect int, onItem func(T) error) error {
	next := 0
	return c.withRetries(ctx, func(ctx context.Context) error {
		before := next
		p := path
		if next > 0 {
			sep := "?"
			if strings.Contains(path, "?") {
				sep = "&"
			}
			p = path + sep + "start_index=" + strconv.Itoa(next)
		}
		resp, err := c.send(ctx, http.MethodPost, p, contentType, body)
		if err != nil {
			return err
		}
		if next > 0 {
			c.countResume(false)
		}
		err = scanStream(resp.Body, &next, onItem)
		resp.Body.Close()
		if err == nil && next < expect {
			err = &TruncatedStreamError{LastIndex: next - 1, Cause: io.ErrUnexpectedEOF}
		}
		if err == nil {
			return nil
		}
		if errors.Is(err, ErrTruncatedStream) {
			c.countResume(true)
		}
		if next > before {
			return &streamProgressError{err: err}
		}
		return err
	})
}

// scanStream drains an NDJSON stream body starting at item *next: each
// in-order item is dispatched to onItem and advances the cursor; a
// terminal error item surfaces as its typed sentinel. A body that ends
// mid-line — or dies with a read error — is a *TruncatedStreamError
// carrying the last intact index, which the resume loop turns into a
// reconnect.
func scanStream[T wireStreamItem](body io.Reader, next *int, onItem func(T) error) error {
	rd := bufio.NewReaderSize(body, 1<<16)
	for {
		line, err := rd.ReadBytes('\n')
		if err != nil {
			if len(bytes.TrimSpace(line)) > 0 || !errors.Is(err, io.EOF) {
				// A partial final line, or the connection died: everything
				// before the last newline was delivered intact.
				cause := err
				if errors.Is(err, io.EOF) {
					cause = io.ErrUnexpectedEOF
				}
				return &TruncatedStreamError{LastIndex: *next - 1, Cause: cause}
			}
			return nil // clean EOF at a line boundary
		}
		line = bytes.TrimSpace(line)
		if len(line) == 0 {
			continue
		}
		var item T
		if err := json.Unmarshal(line, &item); err != nil {
			// The line arrived complete (newline-terminated) but does not
			// parse: a protocol bug, not a truncation — do not resume.
			return fmt.Errorf("onocd: decode stream line: %w", err)
		}
		if body := item.terminal(); body != nil {
			return apierr.FromEnvelope(apierr.Envelope{Error: *body})
		}
		if item.itemIndex() != *next {
			return fmt.Errorf("onocd: stream item index %d, want %d", item.itemIndex(), *next)
		}
		if err := onItem(item); err != nil {
			return err
		}
		*next++
	}
}

// Tune runs one remote autotuner campaign through POST /v1/noc/tune and
// returns the final result. fn, when non-nil, receives each generation's
// archive front as it is solved (gen counts from 0); a fn error aborts the
// campaign. Campaigns are deterministic from the request seed, so an
// interrupted stream resumes with ?start_index and the replayed prefix is
// bit-identical to what was already delivered.
func (c *Client) Tune(ctx context.Context, req NoCTuneRequest, fn func(gen int, front []tune.Point) error) (*tune.Result, error) {
	raw, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("onocd: encode tune request: %w", err)
	}
	gens := req.Generations
	if gens == 0 {
		gens = tune.DefaultGenerations
	}
	var res *tune.Result
	err = streamItems(c, ctx, "/v1/noc/tune", "application/json", raw, gens+1,
		func(item NoCTuneItem) error {
			if item.Summary != nil {
				front, err := coreTuneFront(item.Summary.Front)
				if err != nil {
					return err
				}
				res = &tune.Result{
					Front:       front,
					Generations: item.Summary.Generations,
					Particles:   item.Summary.Particles,
					Evaluated:   item.Summary.Evaluated,
					Infeasible:  item.Summary.Infeasible,
				}
				return nil
			}
			if fn == nil {
				return nil
			}
			front, err := coreTuneFront(item.Front)
			if err != nil {
				return err
			}
			return fn(item.Index, front)
		})
	if err != nil {
		return nil, err
	}
	if res == nil {
		return nil, fmt.Errorf("onocd: tune stream ended without a summary item")
	}
	return res, nil
}

// encodeBatchItems renders the NDJSON request body of /v1/noc/batch.
func encodeBatchItems(items []NoCBatchItem) ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, it := range items {
		if err := enc.Encode(it); err != nil {
			return nil, fmt.Errorf("onocd: encode batch request: %w", err)
		}
	}
	return buf.Bytes(), nil
}

// NetworkBatch streams a candidate-population evaluation from the daemon:
// the items go up as NDJSON lines of POST /v1/noc/batch, and fn is invoked
// once per candidate in population order with the rebuilt result. One
// request amortizes HTTP overhead over the whole population, and the
// daemon's worker sessions diff neighboring candidates incrementally. A
// terminal stream error is returned as the typed error it carried; an
// interrupted stream resumes transparently from the last delivered item.
// This is the strict mode: the first failing candidate ends the batch. Use
// NetworkBatchPartial to keep going past per-candidate failures.
func (c *Client) NetworkBatch(ctx context.Context, items []NoCBatchItem, fn func(int, float64, noc.Result) error) error {
	body, err := encodeBatchItems(items)
	if err != nil {
		return err
	}
	return c.streamNoC(ctx, "/v1/noc/batch", "application/x-ndjson", body, len(items),
		func(item NoCStreamItem) error {
			if item.Partial {
				return fmt.Errorf("onocd: unexpected partial item %d on strict /v1/noc/batch", item.Index)
			}
			res, err := item.Result.Core()
			if err != nil {
				return err
			}
			return fn(item.Index, item.TargetBER, res)
		})
}

// NetworkBatchPartial is the partial-failure variant of NetworkBatch
// (?continue_on_error=1): a failed candidate — infeasible input, a bad
// scheme name, an invalid topology — becomes an indexed error record
// instead of ending the batch, and fn still runs for every candidate that
// succeeded. The returned error is nil when everything succeeded, a
// *engine.BatchErrors aggregating typed engine.CandidateError records
// (ordered by index, multi-unwrapping for errors.Is) when some candidates
// failed, or the terminal error if the stream itself died unrecoverably.
func (c *Client) NetworkBatchPartial(ctx context.Context, items []NoCBatchItem, fn func(int, float64, noc.Result) error) error {
	body, err := encodeBatchItems(items)
	if err != nil {
		return err
	}
	var fails []*engine.CandidateError
	seen := make(map[int]bool)
	err = c.streamNoC(ctx, "/v1/noc/batch?continue_on_error=1", "application/x-ndjson", body, len(items),
		func(item NoCStreamItem) error {
			if item.Partial {
				// Defensive dedupe: the server does not replay partial
				// records below start_index, but a record must never be
				// double-counted even if one slips through a resume.
				if !seen[item.Index] {
					seen[item.Index] = true
					fails = append(fails, &engine.CandidateError{
						Index: item.Index,
						Err:   apierr.FromEnvelope(apierr.Envelope{Error: *item.Error}),
					})
				}
				return nil
			}
			res, err := item.Result.Core()
			if err != nil {
				return err
			}
			return fn(item.Index, item.TargetBER, res)
		})
	if err != nil {
		return err
	}
	if len(fails) > 0 {
		return &engine.BatchErrors{Errors: fails}
	}
	return nil
}

// NetworkSim runs the network discrete-event simulator on the daemon.
func (c *Client) NetworkSim(ctx context.Context, req NoCRequest) (netsim.NetResults, error) {
	var out NoCSimResult
	if err := c.roundTrip(ctx, http.MethodPost, "/v1/noc/sim", req, &out); err != nil {
		return netsim.NetResults{}, err
	}
	return out.Core()
}

// Validate runs a Monte-Carlo validation on the daemon. mc.Result is
// JSON-safe as-is, so it crosses the wire unchanged.
func (c *Client) Validate(ctx context.Context, req ValidateRequest) (mc.Result, error) {
	var out mc.Result
	err := c.roundTrip(ctx, http.MethodPost, "/v1/validate", req, &out)
	return out, err
}

// Evaluate implements core.Evaluator against the daemon: one (scheme,
// target BER) point via a single-cell sweep. The daemon's singleflight and
// sharded LRU make the repeated per-transfer calls of a simulation loop
// cheap.
func (c *Client) Evaluate(ctx context.Context, code ecc.Code, targetBER float64) (core.Evaluation, error) {
	resp, err := c.Sweep(ctx, SweepRequest{Schemes: []string{code.Name()}, TargetBERs: []float64{targetBER}})
	if err != nil {
		return core.Evaluation{}, err
	}
	if len(resp.Evaluations) != 1 {
		return core.Evaluation{}, fmt.Errorf("onocd: %d evaluations for a single-point sweep", len(resp.Evaluations))
	}
	return resp.Evaluations[0].Core()
}
