package onocd

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"

	"photonoc/internal/apierr"
	"photonoc/internal/core"
	"photonoc/internal/ecc"
	"photonoc/internal/mc"
	"photonoc/internal/netsim"
	"photonoc/internal/noc"
)

// Client is a typed onocd client. Errors decoded from the daemon's JSON
// envelope round-trip the package's typed sentinels, so errors.Is works on
// a remote failure exactly as it would in process. Client implements
// core.Evaluator, which is what lets onocsim push per-transfer manager
// decisions through a remote daemon.
type Client struct {
	// Base is the daemon's base URL, e.g. "http://127.0.0.1:9137".
	Base string
	// HTTP is the transport; nil means http.DefaultClient.
	HTTP *http.Client

	// mu guards the revalidation cache below: the last /v1/config body and
	// its ETag, served back on a 304 Not Modified.
	mu        sync.Mutex
	configTag string
	config    ConfigResponse
}

// NewClient builds a client for a daemon base URL.
func NewClient(base string) *Client {
	return &Client{Base: strings.TrimRight(base, "/")}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// roundTrip issues one request and decodes either the response body or the
// error envelope into a typed error.
func (c *Client) roundTrip(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		raw, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("onocd: encode %s request: %w", path, err)
		}
		body = bytes.NewReader(raw)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.Base+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return fmt.Errorf("onocd: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return decodeError(resp)
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("onocd: decode %s response: %w", path, err)
	}
	return nil
}

// decodeError turns a non-2xx response into a typed error via the stable
// envelope; a body that is not an envelope degrades to a plain error.
func decodeError(resp *http.Response) error {
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	var env apierr.Envelope
	if err := json.Unmarshal(raw, &env); err == nil && env.Error.Code != "" {
		return apierr.FromEnvelope(env)
	}
	return fmt.Errorf("onocd: remote error (HTTP %d): %s", resp.StatusCode, bytes.TrimSpace(raw))
}

// Config fetches the daemon's engine configuration and roster. The client
// revalidates with If-None-Match against the daemon's generation-keyed
// ETag, so steady-state polls cost a bodyless 304 and are served from the
// cached copy; a hot reload changes the fingerprint and refetches.
func (c *Client) Config(ctx context.Context) (ConfigResponse, error) {
	c.mu.Lock()
	tag, cached := c.configTag, c.config
	c.mu.Unlock()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+"/v1/config", nil)
	if err != nil {
		return ConfigResponse{}, err
	}
	if tag != "" {
		req.Header.Set("If-None-Match", tag)
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return ConfigResponse{}, fmt.Errorf("onocd: GET /v1/config: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotModified && tag != "" {
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		return cached, nil
	}
	if resp.StatusCode/100 != 2 {
		return ConfigResponse{}, decodeError(resp)
	}
	var out ConfigResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return ConfigResponse{}, fmt.Errorf("onocd: decode /v1/config response: %w", err)
	}
	if tag := resp.Header.Get("ETag"); tag != "" {
		c.mu.Lock()
		c.configTag, c.config = tag, out
		c.mu.Unlock()
	}
	return out, nil
}

// Statusz fetches the daemon status page.
func (c *Client) Statusz(ctx context.Context) (StatusResponse, error) {
	var out StatusResponse
	err := c.roundTrip(ctx, http.MethodGet, "/statusz", nil, &out)
	return out, err
}

// Healthz reports whether the daemon answers its health probe.
func (c *Client) Healthz(ctx context.Context) error {
	return c.roundTrip(ctx, http.MethodGet, "/healthz", nil, nil)
}

// Sweep runs a batch sweep on the daemon.
func (c *Client) Sweep(ctx context.Context, req SweepRequest) (SweepResponse, error) {
	var out SweepResponse
	err := c.roundTrip(ctx, http.MethodPost, "/v1/sweep", req, &out)
	return out, err
}

// Decide runs one manager configuration decision on the daemon.
func (c *Client) Decide(ctx context.Context, req DecideRequest) (DecideResponse, error) {
	var out DecideResponse
	err := c.roundTrip(ctx, http.MethodPost, "/v1/decide", req, &out)
	return out, err
}

// NetworkEval evaluates a topology on the daemon and rebuilds the
// in-process result.
func (c *Client) NetworkEval(ctx context.Context, req NoCRequest) (noc.Result, error) {
	var out NoCResult
	if err := c.roundTrip(ctx, http.MethodPost, "/v1/noc/eval", req, &out); err != nil {
		return noc.Result{}, err
	}
	return out.Core()
}

// NetworkSweep streams a network sweep from the daemon, invoking fn per
// NDJSON line in batch (BER) order. A terminal stream error is returned as
// the typed error it carried.
func (c *Client) NetworkSweep(ctx context.Context, req NoCRequest, fn func(int, float64, noc.Result) error) error {
	raw, err := json.Marshal(req)
	if err != nil {
		return fmt.Errorf("onocd: encode sweep request: %w", err)
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.Base+"/v1/noc/sweep", bytes.NewReader(raw))
	if err != nil {
		return err
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := c.httpClient().Do(hreq)
	if err != nil {
		return fmt.Errorf("onocd: POST /v1/noc/sweep: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return decodeError(resp)
	}
	return scanNoCStream(resp.Body, fn)
}

// scanNoCStream drains an NDJSON NoCStreamItem body, rebuilding each
// in-process result and surfacing a terminal stream error as its typed
// sentinel. Shared by NetworkSweep and NetworkBatch.
func scanNoCStream(body io.Reader, fn func(int, float64, noc.Result) error) error {
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var item NoCStreamItem
		if err := json.Unmarshal(line, &item); err != nil {
			return fmt.Errorf("onocd: decode stream line: %w", err)
		}
		if item.Error != nil {
			return apierr.FromEnvelope(apierr.Envelope{Error: *item.Error})
		}
		res, err := item.Result.Core()
		if err != nil {
			return err
		}
		if err := fn(item.Index, item.TargetBER, res); err != nil {
			return err
		}
	}
	return sc.Err()
}

// NetworkBatch streams a candidate-population evaluation from the daemon:
// the items go up as NDJSON lines of POST /v1/noc/batch, and fn is invoked
// once per candidate in population order with the rebuilt result. One
// request amortizes HTTP overhead over the whole population, and the
// daemon's worker sessions diff neighboring candidates incrementally. A
// terminal stream error is returned as the typed error it carried.
func (c *Client) NetworkBatch(ctx context.Context, items []NoCBatchItem, fn func(int, float64, noc.Result) error) error {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, it := range items {
		if err := enc.Encode(it); err != nil {
			return fmt.Errorf("onocd: encode batch request: %w", err)
		}
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.Base+"/v1/noc/batch", bytes.NewReader(buf.Bytes()))
	if err != nil {
		return err
	}
	hreq.Header.Set("Content-Type", "application/x-ndjson")
	resp, err := c.httpClient().Do(hreq)
	if err != nil {
		return fmt.Errorf("onocd: POST /v1/noc/batch: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return decodeError(resp)
	}
	return scanNoCStream(resp.Body, fn)
}

// NetworkSim runs the network discrete-event simulator on the daemon.
func (c *Client) NetworkSim(ctx context.Context, req NoCRequest) (netsim.NetResults, error) {
	var out NoCSimResult
	if err := c.roundTrip(ctx, http.MethodPost, "/v1/noc/sim", req, &out); err != nil {
		return netsim.NetResults{}, err
	}
	return out.Core()
}

// Validate runs a Monte-Carlo validation on the daemon. mc.Result is
// JSON-safe as-is, so it crosses the wire unchanged.
func (c *Client) Validate(ctx context.Context, req ValidateRequest) (mc.Result, error) {
	var out mc.Result
	err := c.roundTrip(ctx, http.MethodPost, "/v1/validate", req, &out)
	return out, err
}

// Evaluate implements core.Evaluator against the daemon: one (scheme,
// target BER) point via a single-cell sweep. The daemon's singleflight and
// sharded LRU make the repeated per-transfer calls of a simulation loop
// cheap.
func (c *Client) Evaluate(ctx context.Context, code ecc.Code, targetBER float64) (core.Evaluation, error) {
	resp, err := c.Sweep(ctx, SweepRequest{Schemes: []string{code.Name()}, TargetBERs: []float64{targetBER}})
	if err != nil {
		return core.Evaluation{}, err
	}
	if len(resp.Evaluations) != 1 {
		return core.Evaluation{}, fmt.Errorf("onocd: %d evaluations for a single-point sweep", len(resp.Evaluations))
	}
	return resp.Evaluations[0].Core()
}
