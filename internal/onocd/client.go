package onocd

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	"photonoc/internal/apierr"
	"photonoc/internal/core"
	"photonoc/internal/ecc"
	"photonoc/internal/mc"
	"photonoc/internal/netsim"
	"photonoc/internal/noc"
)

// Client is a typed onocd client. Errors decoded from the daemon's JSON
// envelope round-trip the package's typed sentinels, so errors.Is works on
// a remote failure exactly as it would in process. Client implements
// core.Evaluator, which is what lets onocsim push per-transfer manager
// decisions through a remote daemon.
type Client struct {
	// Base is the daemon's base URL, e.g. "http://127.0.0.1:9137".
	Base string
	// HTTP is the transport; nil means http.DefaultClient.
	HTTP *http.Client
}

// NewClient builds a client for a daemon base URL.
func NewClient(base string) *Client {
	return &Client{Base: strings.TrimRight(base, "/")}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// roundTrip issues one request and decodes either the response body or the
// error envelope into a typed error.
func (c *Client) roundTrip(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		raw, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("onocd: encode %s request: %w", path, err)
		}
		body = bytes.NewReader(raw)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.Base+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return fmt.Errorf("onocd: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return decodeError(resp)
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("onocd: decode %s response: %w", path, err)
	}
	return nil
}

// decodeError turns a non-2xx response into a typed error via the stable
// envelope; a body that is not an envelope degrades to a plain error.
func decodeError(resp *http.Response) error {
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	var env apierr.Envelope
	if err := json.Unmarshal(raw, &env); err == nil && env.Error.Code != "" {
		return apierr.FromEnvelope(env)
	}
	return fmt.Errorf("onocd: remote error (HTTP %d): %s", resp.StatusCode, bytes.TrimSpace(raw))
}

// Config fetches the daemon's engine configuration and roster.
func (c *Client) Config(ctx context.Context) (ConfigResponse, error) {
	var out ConfigResponse
	err := c.roundTrip(ctx, http.MethodGet, "/v1/config", nil, &out)
	return out, err
}

// Statusz fetches the daemon status page.
func (c *Client) Statusz(ctx context.Context) (StatusResponse, error) {
	var out StatusResponse
	err := c.roundTrip(ctx, http.MethodGet, "/statusz", nil, &out)
	return out, err
}

// Healthz reports whether the daemon answers its health probe.
func (c *Client) Healthz(ctx context.Context) error {
	return c.roundTrip(ctx, http.MethodGet, "/healthz", nil, nil)
}

// Sweep runs a batch sweep on the daemon.
func (c *Client) Sweep(ctx context.Context, req SweepRequest) (SweepResponse, error) {
	var out SweepResponse
	err := c.roundTrip(ctx, http.MethodPost, "/v1/sweep", req, &out)
	return out, err
}

// Decide runs one manager configuration decision on the daemon.
func (c *Client) Decide(ctx context.Context, req DecideRequest) (DecideResponse, error) {
	var out DecideResponse
	err := c.roundTrip(ctx, http.MethodPost, "/v1/decide", req, &out)
	return out, err
}

// NetworkEval evaluates a topology on the daemon and rebuilds the
// in-process result.
func (c *Client) NetworkEval(ctx context.Context, req NoCRequest) (noc.Result, error) {
	var out NoCResult
	if err := c.roundTrip(ctx, http.MethodPost, "/v1/noc/eval", req, &out); err != nil {
		return noc.Result{}, err
	}
	return out.Core()
}

// NetworkSweep streams a network sweep from the daemon, invoking fn per
// NDJSON line in batch (BER) order. A terminal stream error is returned as
// the typed error it carried.
func (c *Client) NetworkSweep(ctx context.Context, req NoCRequest, fn func(int, float64, noc.Result) error) error {
	raw, err := json.Marshal(req)
	if err != nil {
		return fmt.Errorf("onocd: encode sweep request: %w", err)
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.Base+"/v1/noc/sweep", bytes.NewReader(raw))
	if err != nil {
		return err
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := c.httpClient().Do(hreq)
	if err != nil {
		return fmt.Errorf("onocd: POST /v1/noc/sweep: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return decodeError(resp)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var item NoCStreamItem
		if err := json.Unmarshal(line, &item); err != nil {
			return fmt.Errorf("onocd: decode stream line: %w", err)
		}
		if item.Error != nil {
			return apierr.FromEnvelope(apierr.Envelope{Error: *item.Error})
		}
		res, err := item.Result.Core()
		if err != nil {
			return err
		}
		if err := fn(item.Index, item.TargetBER, res); err != nil {
			return err
		}
	}
	return sc.Err()
}

// NetworkSim runs the network discrete-event simulator on the daemon.
func (c *Client) NetworkSim(ctx context.Context, req NoCRequest) (netsim.NetResults, error) {
	var out NoCSimResult
	if err := c.roundTrip(ctx, http.MethodPost, "/v1/noc/sim", req, &out); err != nil {
		return netsim.NetResults{}, err
	}
	return out.Core()
}

// Validate runs a Monte-Carlo validation on the daemon. mc.Result is
// JSON-safe as-is, so it crosses the wire unchanged.
func (c *Client) Validate(ctx context.Context, req ValidateRequest) (mc.Result, error) {
	var out mc.Result
	err := c.roundTrip(ctx, http.MethodPost, "/v1/validate", req, &out)
	return out, err
}

// Evaluate implements core.Evaluator against the daemon: one (scheme,
// target BER) point via a single-cell sweep. The daemon's singleflight and
// sharded LRU make the repeated per-transfer calls of a simulation loop
// cheap.
func (c *Client) Evaluate(ctx context.Context, code ecc.Code, targetBER float64) (core.Evaluation, error) {
	resp, err := c.Sweep(ctx, SweepRequest{Schemes: []string{code.Name()}, TargetBERs: []float64{targetBER}})
	if err != nil {
		return core.Evaluation{}, err
	}
	if len(resp.Evaluations) != 1 {
		return core.Evaluation{}, fmt.Errorf("onocd: %d evaluations for a single-point sweep", len(resp.Evaluations))
	}
	return resp.Evaluations[0].Core()
}
