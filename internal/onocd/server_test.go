package onocd

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"photonoc/internal/apierr"
	"photonoc/internal/core"
	"photonoc/internal/ecc"
	"photonoc/internal/engine"
	"photonoc/internal/resilience"
)

// Client drives netsim, so it must satisfy the evaluator seam.
var _ core.Evaluator = (*Client)(nil)

// newTestServer spins up the daemon on httptest with small limits.
func newTestServer(t *testing.T, opts Options) (*Server, *Client) {
	t.Helper()
	if opts.Workers == 0 {
		opts.Workers = 2
	}
	s, err := NewServer(opts)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(hs.Close)
	return s, NewClient(hs.URL)
}

func TestSweepMatchesInProcess(t *testing.T) {
	s, c := newTestServer(t, Options{})
	ctx := context.Background()
	bers := []float64{1e-12, 1e-9}

	resp, err := c.Sweep(ctx, SweepRequest{TargetBERs: bers})
	if err != nil {
		t.Fatal(err)
	}
	want, err := s.Engine().Sweep(ctx, nil, bers)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Evaluations) != len(want) {
		t.Fatalf("%d evaluations, want %d", len(resp.Evaluations), len(want))
	}
	for i, w := range resp.Evaluations {
		back, err := w.Core()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(back, want[i]) {
			t.Errorf("evaluation %d: remote %+v != local %+v", i, back, want[i])
		}
	}
}

func TestSweepStreamMatchesBatch(t *testing.T) {
	s, c := newTestServer(t, Options{})
	ctx := context.Background()
	bers := []float64{1e-11, 1e-9}
	want, err := s.Engine().Sweep(ctx, nil, bers)
	if err != nil {
		t.Fatal(err)
	}

	body, _ := json.Marshal(SweepRequest{TargetBERs: bers})
	req, _ := http.NewRequestWithContext(ctx, http.MethodPost, c.Base+"/v1/sweep/stream", bytes.NewReader(body))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q", ct)
	}
	var items []StreamItem
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		var it StreamItem
		if err := json.Unmarshal(sc.Bytes(), &it); err != nil {
			t.Fatalf("line %d: %v", len(items), err)
		}
		items = append(items, it)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(items) != len(want) {
		t.Fatalf("%d stream items, want %d", len(items), len(want))
	}
	for i, it := range items {
		if it.Index != i || it.Error != nil || it.Evaluation == nil {
			t.Fatalf("item %d malformed: %+v", i, it)
		}
		back, err := it.Evaluation.Core()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(back, want[i]) {
			t.Errorf("stream item %d differs from batch", i)
		}
	}
}

func TestDecideRoutes(t *testing.T) {
	s, c := newTestServer(t, Options{})
	ctx := context.Background()

	dec, err := c.Decide(ctx, DecideRequest{TargetBER: 1e-11, Objective: "min-power"})
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Eval.Feasible || dec.Eval.Scheme == "" {
		t.Errorf("decision not feasible: %+v", dec)
	}
	// The remote decision must be the in-process manager's, field for field.
	ev, err := s.Engine().Evaluate(ctx, mustScheme(t, dec.Eval.Scheme), 1e-11)
	if err != nil {
		t.Fatal(err)
	}
	back, err := dec.Eval.Core()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, ev) {
		t.Errorf("remote decision eval differs from engine solve")
	}

	// Infeasible requirements surface as a typed 422 the client can match.
	_, err = c.Decide(ctx, DecideRequest{TargetBER: 1e-12, MaxCT: 1})
	if !errors.Is(err, apierr.ErrInfeasible) {
		t.Errorf("want ErrInfeasible across the wire, got %v", err)
	}
}

func TestNoCEvalMatchesInProcess(t *testing.T) {
	s, c := newTestServer(t, Options{})
	ctx := context.Background()
	req := NoCRequest{Topology: "mesh", Tiles: 4, TargetBER: 1e-11, UseDAC: true}

	remote, err := c.NetworkEval(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := req.topology()
	if err != nil {
		t.Fatal(err)
	}
	opts, err := req.evalOptions()
	if err != nil {
		t.Fatal(err)
	}
	local, err := s.Engine().Network(ctx, cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	// The reconstructed result loses the full per-link Evaluation (only the
	// scheme survives the wire), so compare the wire projections.
	rw, lw := toWireNoC(remote), toWireNoC(local)
	rj, _ := json.Marshal(rw)
	lj, _ := json.Marshal(lw)
	if !bytes.Equal(rj, lj) {
		t.Errorf("remote NoC eval differs:\nremote %s\nlocal  %s", rj, lj)
	}
	if remote.EnergyPerBitJ <= 0 || !remote.Feasible {
		t.Errorf("implausible result: %+v", remote)
	}
}

func TestNoCSimDeterministicAcrossWire(t *testing.T) {
	s, c := newTestServer(t, Options{})
	ctx := context.Background()
	req := NoCRequest{Topology: "bus", Tiles: 4, TargetBER: 1e-11, Messages: 500, Seed: 42}

	remote, err := c.NetworkSim(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	cfg, _ := req.topology()
	obj, err := parseObjective("")
	if err != nil {
		t.Fatal(err)
	}
	local, err := s.Engine().SimulateNetwork(ctx, cfg, engine.NetworkSimOptions{
		TargetBER: 1e-11, Messages: 500, Seed: 42, Objective: obj,
	})
	if err != nil {
		t.Fatal(err)
	}
	rj, _ := json.Marshal(toWireSim(remote))
	lj, _ := json.Marshal(toWireSim(local))
	if !bytes.Equal(rj, lj) {
		t.Errorf("remote sim differs from local seeded run:\nremote %s\nlocal  %s", rj, lj)
	}
}

func TestValidateRoute(t *testing.T) {
	_, c := newTestServer(t, Options{})
	res, err := c.Validate(context.Background(), ValidateRequest{
		Scheme: "H(7,4)", RawBER: 1e-2, Frames: 2000, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The bit-sliced engine rounds the frame budget up to a word boundary.
	if res.Frames < 2000 || res.Code != "H(7,4)" {
		t.Errorf("result: %+v", res)
	}
}

func TestErrorEnvelopesPerRoute(t *testing.T) {
	_, c := newTestServer(t, Options{})
	post := func(path, body string) (int, apierr.Envelope) {
		t.Helper()
		resp, err := http.Post(c.Base+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var env apierr.Envelope
		if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
			t.Fatalf("%s: decoding envelope: %v", path, err)
		}
		return resp.StatusCode, env
	}

	for _, tc := range []struct {
		path, body string
		status     int
		code       string
	}{
		{"/v1/sweep", "{not json", 400, apierr.CodeInvalidInput},
		{"/v1/sweep", `{"surprise_field": 1}`, 400, apierr.CodeInvalidInput},
		{"/v1/sweep", `{"target_bers": []}`, 400, apierr.CodeInvalidInput},
		{"/v1/sweep", `{"schemes": ["nope"], "target_bers": [1e-9]}`, 400, apierr.CodeInvalidInput},
		{"/v1/decide", `{"target_ber": 1e-12, "max_ct": 1}`, 422, apierr.CodeInfeasible},
		{"/v1/decide", `{"target_ber": 1e-9, "objective": "fastest"}`, 400, apierr.CodeInvalidInput},
		{"/v1/noc/eval", `{"topology": "torus", "tiles": 4, "target_ber": 1e-9}`, 400, apierr.CodeInvalidInput},
		{"/v1/noc/eval", `{"topology": "mesh", "tiles": 1, "target_ber": 1e-9}`, 400, apierr.CodeInvalidConfig},
		{"/v1/validate", `{"scheme": "H(7,4)", "raw_ber": 2.0, "frames": 10}`, 400, apierr.CodeInvalidInput},
	} {
		status, env := post(tc.path, tc.body)
		if status != tc.status || env.Error.Code != tc.code {
			t.Errorf("%s %s: got %d/%q, want %d/%q (message %q)",
				tc.path, tc.body, status, env.Error.Code, tc.status, tc.code, env.Error.Message)
		}
		if env.Error.Status != status {
			t.Errorf("%s: envelope status %d != HTTP status %d", tc.path, env.Error.Status, status)
		}
	}
}

func TestDeadlineExpiryMapsTo504(t *testing.T) {
	_, c := newTestServer(t, Options{})
	// A Monte-Carlo run big enough to outlive a 1 ms budget by orders of
	// magnitude; the engine aborts at a round barrier and returns the
	// context error, which must surface as the 504 envelope.
	body := `{"scheme": "H(7,4)", "raw_ber": 1e-3, "frames": 1073741824}`
	resp, err := http.Post(c.Base+"/v1/validate?timeout_ms=1", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var env apierr.Envelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 504 || env.Error.Code != apierr.CodeDeadline {
		t.Errorf("got %d/%q, want 504/deadline_exceeded", resp.StatusCode, env.Error.Code)
	}
	// And the typed client surfaces it as the context sentinel (fail-fast
	// policy: a 504 is retryable and would otherwise re-run the oversized
	// Monte-Carlo budget several times).
	c.Retry = resilience.NewRetrier(resilience.NoRetry())
	_, err = c.Validate(context.Background(), ValidateRequest{Scheme: "H(7,4)", RawBER: 1e-3, Frames: 1 << 30})
	if err != nil && !errors.Is(err, context.DeadlineExceeded) {
		t.Logf("note: full-budget validate finished: %v", err)
	}
}

func TestAdmissionControl(t *testing.T) {
	s, c := newTestServer(t, Options{MaxInFlight: 2})
	// Fill the admission semaphore so the next request must be refused.
	s.sem <- struct{}{}
	s.sem <- struct{}{}
	defer func() { <-s.sem; <-s.sem }()

	resp, err := http.Post(c.Base+"/v1/sweep", "application/json",
		strings.NewReader(`{"target_bers": [1e-9]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "1" {
		t.Errorf("Retry-After = %q", ra)
	}
	var env apierr.Envelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	if env.Error.Code != apierr.CodeOverloaded {
		t.Errorf("code = %q", env.Error.Code)
	}
	// The typed client round-trips the sentinel. Fail-fast policy: the
	// saturation is held for the whole test, so retrying (the default)
	// would only stretch the test by the Retry-After floor per attempt.
	c.Retry = resilience.NewRetrier(resilience.NoRetry())
	_, err = c.Sweep(context.Background(), SweepRequest{TargetBERs: []float64{1e-9}})
	if !errors.Is(err, apierr.ErrOverloaded) {
		t.Errorf("client error = %v, want ErrOverloaded", err)
	}
	// Observability routes stay reachable while the service is saturated.
	if err := c.Healthz(context.Background()); err != nil {
		t.Errorf("healthz under saturation: %v", err)
	}
}

func TestHotReloadSwapsEngine(t *testing.T) {
	s, c := newTestServer(t, Options{})
	ctx := context.Background()
	before, err := c.Config(ctx)
	if err != nil {
		t.Fatal(err)
	}

	cfg := s.Engine().Config()
	cfg.FmodHz *= 2
	if err := s.Reload(cfg); err != nil {
		t.Fatal(err)
	}
	after, err := c.Config(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if after.Fingerprint == before.Fingerprint {
		t.Error("fingerprint unchanged after reload with a different config")
	}
	if after.Config.FmodHz != cfg.FmodHz {
		t.Errorf("reloaded FmodHz = %g, want %g", after.Config.FmodHz, cfg.FmodHz)
	}
	st, err := c.Statusz(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Reloads != 1 {
		t.Errorf("reloads = %d, want 1", st.Reloads)
	}
	// Reload with the zero config restores the original generation.
	if err := s.Reload(core.LinkConfig{}); err != nil {
		t.Fatal(err)
	}
	restored, err := c.Config(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Fingerprint != before.Fingerprint {
		t.Error("zero-config reload did not restore the original fingerprint")
	}
	// A bad config must not tear down the serving generation.
	bad := s.Engine().Config()
	bad.FmodHz = -1
	if err := s.Reload(bad); !errors.Is(err, apierr.ErrInvalidConfig) {
		t.Errorf("bad reload: %v", err)
	}
	if err := c.Healthz(ctx); err != nil {
		t.Errorf("service down after rejected reload: %v", err)
	}
}

func TestDrainingHealthz(t *testing.T) {
	s, c := newTestServer(t, Options{})
	s.SetDraining(true)
	resp, err := http.Get(c.Base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("draining healthz = %d, want 503", resp.StatusCode)
	}
	// Requests still complete while draining.
	if _, err := c.Sweep(context.Background(), SweepRequest{TargetBERs: []float64{1e-9}}); err != nil {
		t.Errorf("sweep while draining: %v", err)
	}
}

func TestMetricsExposition(t *testing.T) {
	_, c := newTestServer(t, Options{})
	if _, err := c.Sweep(context.Background(), SweepRequest{TargetBERs: []float64{1e-9}}); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(c.Base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	if _, err := io.Copy(&sb, resp.Body); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		`onocd_requests_total{route="/v1/sweep",code="200"} 1`,
		`onocd_request_duration_seconds_count{route="/v1/sweep"} 1`,
		`onocd_request_duration_seconds_bucket{route="/v1/sweep",le="+Inf"} 1`,
		"onocd_cache_misses_total",
		"onocd_cache_session_reuses_total",
		"onocd_cache_shards",
		"onocd_in_flight_requests 0",
		"onocd_admission_rejected_total 0",
		"onocd_engine_reloads_total 0",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q\n%s", want, text)
		}
	}
}

func TestServiceStampedeCoalesces(t *testing.T) {
	// The ISSUE's acceptance proof at the service layer: concurrent
	// identical cold requests through the full HTTP stack still cost
	// exactly one compiled solve per grid point.
	s, c := newTestServer(t, Options{MaxInFlight: 64})
	const clients = 16
	ctx := context.Background()
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		go func() {
			_, err := c.Sweep(ctx, SweepRequest{Schemes: []string{"H(7,4)"}, TargetBERs: []float64{1e-10}})
			errs <- err
		}()
	}
	for i := 0; i < clients; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	if cs := s.Engine().CacheStats(); cs.ColdSolves != 1 {
		t.Errorf("cold solves = %d, want exactly 1 across %d concurrent HTTP requests", cs.ColdSolves, clients)
	}
}

func TestRunLoadWarmHitRate(t *testing.T) {
	s, c := newTestServer(t, Options{})
	ctx := context.Background()
	// Warm the single-point working set, then drive the closed loop.
	if _, err := c.Sweep(ctx, SweepRequest{TargetBERs: []float64{1e-11}}); err != nil {
		t.Fatal(err)
	}
	before := s.Engine().CacheStats()
	stats, err := RunLoad(ctx, c, LoadOptions{Clients: 4, Requests: 60})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Requests != 60 || stats.Completed != 60 || stats.Non2xx != 0 {
		t.Fatalf("stats: %+v", stats)
	}
	if stats.QPS <= 0 || stats.P50 <= 0 || stats.P99 < stats.P50 {
		t.Errorf("implausible latency stats: %+v", stats)
	}
	after := s.Engine().CacheStats()
	hits, misses := after.Hits-before.Hits, after.Misses-before.Misses
	if rate := float64(hits) / float64(hits+misses); rate < 0.99 {
		t.Errorf("warm phase hit rate %.3f, want ~1 (hits %d, misses %d)", rate, hits, misses)
	}
	var tbl strings.Builder
	stats.WriteTable(&tbl, "warm")
	if !strings.Contains(tbl.String(), "qps") {
		t.Errorf("table: %q", tbl.String())
	}
}

// TestRunLoadZeroCompleted pins the 100%-failure contract behind
// cmd/onocload: when every measured request is rejected the latency sample
// is empty, so the stats must report Completed 0 with zeroed QPS and
// percentiles (never NaN — json.Marshal would refuse it), and WriteTable
// must print an explicit "0 completed" line instead of fabricated
// percentile columns.
func TestRunLoadZeroCompleted(t *testing.T) {
	_, c := newTestServer(t, Options{})
	stats, err := RunLoad(context.Background(), c, LoadOptions{
		Clients:  2,
		Requests: 8,
		// A zero BER is a deterministic 400 — final, never retried — so
		// every request fails without a single completion.
		MakeRequest: func(int) SweepRequest {
			return SweepRequest{TargetBERs: []float64{0}}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Requests != 8 || stats.Completed != 0 || stats.Non2xx != 8 {
		t.Fatalf("stats: %+v", stats)
	}
	if stats.QPS != 0 || stats.P50 != 0 || stats.P99 != 0 || stats.Max != 0 {
		t.Errorf("figures fabricated from an empty sample: %+v", stats)
	}
	if stats.FirstError == "" {
		t.Error("no failure sampled into FirstError")
	}
	var tbl strings.Builder
	stats.WriteTable(&tbl, "warm")
	if !strings.Contains(tbl.String(), "0 completed") || strings.Contains(tbl.String(), "qps") {
		t.Errorf("table: %q", tbl.String())
	}
	if _, err := json.Marshal(stats); err != nil {
		t.Errorf("stats do not survive JSON encoding: %v", err)
	}
}

func TestWFloatRoundTrip(t *testing.T) {
	for _, v := range []float64{0, 1.5, -2.25e-9, math.Inf(1), math.Inf(-1)} {
		raw, err := json.Marshal(WFloat(v))
		if err != nil {
			t.Fatal(err)
		}
		var back WFloat
		if err := json.Unmarshal(raw, &back); err != nil {
			t.Fatal(err)
		}
		if float64(back) != v {
			t.Errorf("%g → %s → %g", v, raw, float64(back))
		}
	}
	// Finite values must reproduce encoding/json's float notation byte for
	// byte — promoting a float64 wire field to WFloat is invisible until
	// the value goes non-finite.
	for _, v := range []float64{0, 1.5, -2.25e-9, 1e-11, 108169014084.50705, 1e21, 5.4084507042253525e+22} {
		wraw, err := json.Marshal(WFloat(v))
		if err != nil {
			t.Fatal(err)
		}
		fraw, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		if string(wraw) != string(fraw) {
			t.Errorf("WFloat(%g) marshals as %s, float64 as %s", v, wraw, fraw)
		}
	}
	raw, _ := json.Marshal(WFloat(math.NaN()))
	if string(raw) != `"NaN"` {
		t.Errorf("NaN marshals as %s", raw)
	}
	var back WFloat
	if err := json.Unmarshal([]byte(`"NaN"`), &back); err != nil || !math.IsNaN(float64(back)) {
		t.Errorf("NaN unmarshal: %v %v", back, err)
	}
	if err := json.Unmarshal([]byte(`"pizza"`), &back); err == nil {
		t.Error("garbage WFloat accepted")
	}
	// A saturated NoC result (Inf queue wait) must cross the wire.
	res := NoCResult{MeanLatencySec: WFloat(math.Inf(1))}
	if _, err := json.Marshal(res); err != nil {
		t.Errorf("saturated result does not marshal: %v", err)
	}
}

func mustScheme(t *testing.T, name string) ecc.Code {
	t.Helper()
	c, ok := ecc.SchemeByName(name)
	if !ok {
		t.Fatalf("unknown scheme %q", name)
	}
	return c
}
