package onocd

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"testing"

	"photonoc/internal/faultinject"
)

// This file is a strict parser for the Prometheus text exposition format,
// used only by tests: the daemon writes /metrics by hand (the module stays
// dependency-free), so the format discipline a real Prometheus server would
// enforce at scrape time is enforced here instead — every family declared
// with HELP and TYPE before its samples, labels escaped exactly, histogram
// buckets cumulative with le="+Inf" equal to the count.

// promSample is one parsed sample line.
type promSample struct {
	name   string
	labels map[string]string
	value  float64
	line   int
}

// promFamily is one metric family: its declared metadata plus samples.
type promFamily struct {
	name    string
	help    string
	typ     string
	samples []promSample
}

// parsePromText parses the text exposition format strictly, failing on
// anything a Prometheus scraper would reject: samples before metadata,
// duplicate or misordered HELP/TYPE, unknown types, malformed labels, and
// unparsable values.
func parsePromText(t *testing.T, text string) map[string]*promFamily {
	t.Helper()
	fams := make(map[string]*promFamily)
	// base maps a sample name to its family name (histogram samples use
	// name_bucket / name_sum / name_count under the family's TYPE).
	base := func(name string) string {
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			trimmed := strings.TrimSuffix(name, suf)
			if trimmed != name {
				if f, ok := fams[trimmed]; ok && f.typ == "histogram" {
					return trimmed
				}
			}
		}
		return name
	}
	sc := bufio.NewScanner(strings.NewReader(text))
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			rest := strings.TrimPrefix(line, "# HELP ")
			name, help, ok := strings.Cut(rest, " ")
			if !ok || name == "" {
				t.Fatalf("line %d: malformed HELP: %q", lineNo, line)
			}
			if f, dup := fams[name]; dup && f.help != "" {
				t.Fatalf("line %d: duplicate HELP for %s", lineNo, name)
			}
			f := fams[name]
			if f == nil {
				f = &promFamily{name: name}
				fams[name] = f
			}
			if len(f.samples) > 0 {
				t.Fatalf("line %d: HELP for %s after its samples", lineNo, name)
			}
			f.help = help
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			rest := strings.TrimPrefix(line, "# TYPE ")
			name, typ, ok := strings.Cut(rest, " ")
			if !ok || name == "" {
				t.Fatalf("line %d: malformed TYPE: %q", lineNo, line)
			}
			switch typ {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				t.Fatalf("line %d: unknown TYPE %q for %s", lineNo, typ, name)
			}
			f := fams[name]
			if f == nil {
				f = &promFamily{name: name}
				fams[name] = f
			}
			if f.typ != "" {
				t.Fatalf("line %d: duplicate TYPE for %s", lineNo, name)
			}
			if len(f.samples) > 0 {
				t.Fatalf("line %d: TYPE for %s after its samples", lineNo, name)
			}
			f.typ = typ
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("line %d: comment that is neither HELP nor TYPE: %q", lineNo, line)
		}
		s := parsePromSample(t, line, lineNo)
		famName := base(s.name)
		f := fams[famName]
		if f == nil || f.typ == "" || f.help == "" {
			t.Fatalf("line %d: sample %s before its family's HELP and TYPE", lineNo, s.name)
		}
		f.samples = append(f.samples, s)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return fams
}

// parsePromSample parses one `name{label="v",...} value` line, unescaping
// label values per the exposition format (\\, \", \n only).
func parsePromSample(t *testing.T, line string, lineNo int) promSample {
	t.Helper()
	s := promSample{labels: map[string]string{}, line: lineNo}
	i := strings.IndexAny(line, "{ ")
	if i <= 0 {
		t.Fatalf("line %d: malformed sample: %q", lineNo, line)
	}
	s.name = line[:i]
	if !validPromName(s.name) {
		t.Fatalf("line %d: invalid metric name %q", lineNo, s.name)
	}
	rest := line[i:]
	if rest[0] == '{' {
		rest = rest[1:]
		for {
			eq := strings.Index(rest, "=")
			if eq <= 0 || len(rest) < eq+2 || rest[eq+1] != '"' {
				t.Fatalf("line %d: malformed label in %q", lineNo, line)
			}
			lname := rest[:eq]
			if !validPromName(lname) {
				t.Fatalf("line %d: invalid label name %q", lineNo, lname)
			}
			rest = rest[eq+2:]
			var val strings.Builder
			closed := false
			for j := 0; j < len(rest); j++ {
				c := rest[j]
				if c == '\\' {
					if j+1 >= len(rest) {
						t.Fatalf("line %d: dangling escape in %q", lineNo, line)
					}
					j++
					switch rest[j] {
					case '\\':
						val.WriteByte('\\')
					case '"':
						val.WriteByte('"')
					case 'n':
						val.WriteByte('\n')
					default:
						t.Fatalf("line %d: invalid escape \\%c in %q", lineNo, rest[j], line)
					}
					continue
				}
				if c == '"' {
					closed = true
					rest = rest[j+1:]
					break
				}
				val.WriteByte(c)
			}
			if !closed {
				t.Fatalf("line %d: unterminated label value in %q", lineNo, line)
			}
			if _, dup := s.labels[lname]; dup {
				t.Fatalf("line %d: duplicate label %s in %q", lineNo, lname, line)
			}
			s.labels[lname] = val.String()
			if strings.HasPrefix(rest, ",") {
				rest = rest[1:]
				continue
			}
			if strings.HasPrefix(rest, "}") {
				rest = rest[1:]
				break
			}
			t.Fatalf("line %d: expected , or } after label in %q", lineNo, line)
		}
	}
	rest = strings.TrimPrefix(rest, " ")
	if rest == "" || strings.ContainsAny(rest, " \t") {
		t.Fatalf("line %d: expected exactly one value after labels in %q", lineNo, line)
	}
	v, err := parsePromValue(rest)
	if err != nil {
		t.Fatalf("line %d: bad value %q: %v", lineNo, rest, err)
	}
	s.value = v
	return s
}

func parsePromValue(v string) (float64, error) {
	switch v {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(v, 64)
}

func validPromName(n string) bool {
	if n == "" {
		return false
	}
	for i, c := range n {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// labelKey canonicalizes a label set minus the given key, for grouping
// histogram series.
func labelKey(labels map[string]string, drop string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		if k == drop {
			continue
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%s=%q,", k, labels[k])
	}
	return b.String()
}

// validateHistogram checks one histogram family: every series has cumulative
// (non-decreasing) buckets ending in le="+Inf", and that final bucket equals
// the series' _count.
func validateHistogram(t *testing.T, fams map[string]*promFamily, f *promFamily) {
	t.Helper()
	type series struct {
		bounds []float64
		counts []float64
	}
	buckets := map[string]*series{}
	counts := map[string]float64{}
	sums := map[string]bool{}
	for _, s := range f.samples {
		switch s.name {
		case f.name + "_bucket":
			le, ok := s.labels["le"]
			if !ok {
				t.Fatalf("%s line %d: bucket without le label", f.name, s.line)
			}
			bound, err := parsePromValue(le)
			if err != nil {
				t.Fatalf("%s line %d: bad le %q", f.name, s.line, le)
			}
			k := labelKey(s.labels, "le")
			sr := buckets[k]
			if sr == nil {
				sr = &series{}
				buckets[k] = sr
			}
			sr.bounds = append(sr.bounds, bound)
			sr.counts = append(sr.counts, s.value)
		case f.name + "_count":
			counts[labelKey(s.labels, "")] = s.value
		case f.name + "_sum":
			sums[labelKey(s.labels, "")] = true
		default:
			t.Fatalf("%s line %d: unexpected sample %s in histogram family", f.name, s.line, s.name)
		}
	}
	if len(buckets) == 0 {
		t.Fatalf("histogram %s has no buckets", f.name)
	}
	for k, sr := range buckets {
		for i := 1; i < len(sr.bounds); i++ {
			if sr.bounds[i] <= sr.bounds[i-1] {
				t.Errorf("%s{%s}: bucket bounds not increasing: %g after %g", f.name, k, sr.bounds[i], sr.bounds[i-1])
			}
			if sr.counts[i] < sr.counts[i-1] {
				t.Errorf("%s{%s}: bucket counts not cumulative: le=%g has %g < %g", f.name, k, sr.bounds[i], sr.counts[i], sr.counts[i-1])
			}
		}
		last := len(sr.bounds) - 1
		if !math.IsInf(sr.bounds[last], 1) {
			t.Errorf("%s{%s}: final bucket is le=%g, want +Inf", f.name, k, sr.bounds[last])
		}
		cnt, ok := counts[k]
		if !ok {
			t.Errorf("%s{%s}: missing _count series", f.name, k)
		} else if sr.counts[last] != cnt {
			t.Errorf("%s{%s}: le=+Inf bucket %g != _count %g", f.name, k, sr.counts[last], cnt)
		}
		if !sums[k] {
			t.Errorf("%s{%s}: missing _sum series", f.name, k)
		}
	}
}

// TestMetricsStrictFormat drives real traffic through the daemon, then
// parses /metrics with the strict parser above: every family must carry
// HELP and TYPE, every expected series must be present, and both histograms
// must be cumulative with le="+Inf" matching their _count.
func TestMetricsStrictFormat(t *testing.T) {
	inj := faultinject.NewSpread(7, 0) // wired but silent: fault counters emit at zero
	_, c := newTestServer(t, Options{FaultInjector: inj})
	ctx := context.Background()
	if _, err := c.Sweep(ctx, SweepRequest{TargetBERs: []float64{1e-9, 1e-10}}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.NetworkEval(ctx, NoCRequest{Topology: "crossbar", Tiles: 8, TargetBER: 1e-9}); err != nil {
		t.Fatal(err)
	}
	// Repeat for cache hits, so shard hit counters move.
	if _, err := c.Sweep(ctx, SweepRequest{TargetBERs: []float64{1e-9, 1e-10}}); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(c.Base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	fams := parsePromText(t, string(body))

	expected := []string{
		"onocd_admission_rejected_total",
		"onocd_in_flight_requests",
		"onocd_requests_total",
		"onocd_request_duration_seconds",
		"onocd_engine_reloads_total",
		"onocd_cache_hits_total",
		"onocd_cache_misses_total",
		"onocd_cache_cold_solves_total",
		"onocd_cache_shared_solves_total",
		"onocd_cache_session_reuses_total",
		"onocd_cache_entries",
		"onocd_cache_capacity",
		"onocd_cache_shards",
		"onocd_cache_cold_solve_seconds_total",
		"onocd_cold_solve_duration_seconds",
		"onocd_cache_shard_hits_total",
		"onocd_cache_shard_misses_total",
		"onocd_goroutines",
		"onocd_heap_alloc_bytes",
		"onocd_heap_sys_bytes",
		"onocd_next_gc_bytes",
		"onocd_gc_cycles_total",
		"onocd_gc_pause_seconds_total",
		"onocd_build_info",
		"onocd_fault_requests_total",
		"onocd_fault_injected_total",
	}
	for _, name := range expected {
		f := fams[name]
		if f == nil {
			t.Errorf("family %s missing from /metrics", name)
			continue
		}
		if f.help == "" || f.typ == "" {
			t.Errorf("family %s missing HELP or TYPE", name)
		}
		if len(f.samples) == 0 {
			t.Errorf("family %s declared but has no samples", name)
		}
	}

	for name, f := range fams {
		if f.typ == "histogram" {
			validateHistogram(t, fams, f)
		}
		if f.typ == "counter" {
			for _, s := range f.samples {
				if s.value < 0 {
					t.Errorf("counter %s line %d is negative: %g", name, s.line, s.value)
				}
			}
		}
	}

	// Per-shard counters must cover every shard and sum to the cache totals.
	shards := fams["onocd_cache_shards"].samples[0].value
	if got := float64(len(fams["onocd_cache_shard_hits_total"].samples)); got != shards {
		t.Errorf("shard hit series = %g, want one per shard (%g)", got, shards)
	}
	var shardHits, totalHits float64
	for _, s := range fams["onocd_cache_shard_hits_total"].samples {
		shardHits += s.value
	}
	totalHits = fams["onocd_cache_hits_total"].samples[0].value
	if shardHits != totalHits {
		t.Errorf("per-shard hits sum %g != onocd_cache_hits_total %g", shardHits, totalHits)
	}
	if totalHits == 0 {
		t.Error("no cache hits recorded; the repeat sweep should have hit the memo cache")
	}
	if fams["onocd_cold_solve_duration_seconds"].samples[len(fams["onocd_cold_solve_duration_seconds"].samples)-1].value == 0 {
		t.Error("cold-solve histogram empty; the first sweep should have solved cold")
	}
	if fams["onocd_build_info"].samples[0].labels["go_version"] == "" {
		t.Error("onocd_build_info missing go_version label")
	}
}
