package onocd

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"net/http"
	"sync"
	"testing"

	"photonoc/internal/faultinject"
	"photonoc/internal/obs"
)

// syncBuffer is a mutex-guarded bytes.Buffer: slog handlers write whole
// records in one Write call, so a lock per write keeps concurrent handler
// goroutines from interleaving JSON lines.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) Bytes() []byte {
	b.mu.Lock()
	defer b.mu.Unlock()
	return bytes.Clone(b.buf.Bytes())
}

// logLines decodes a JSON-lines log buffer, failing the test on any line
// that is not a standalone JSON object — the structured-logging contract.
func logLines(t *testing.T, raw []byte) []map[string]any {
	t.Helper()
	var out []map[string]any
	sc := bufio.NewScanner(bytes.NewReader(raw))
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("log line is not JSON: %v\n%s", err, sc.Text())
		}
		out = append(out, m)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// byTrace indexes log records by their trace_id, keeping only records that
// carry one.
func byTrace(lines []map[string]any) map[string][]map[string]any {
	idx := make(map[string][]map[string]any)
	for _, m := range lines {
		id, _ := m["trace_id"].(string)
		if id == "" {
			continue
		}
		idx[id] = append(idx[id], m)
	}
	return idx
}

// hasMsg reports whether any record in the slice has the given msg, with an
// optional extra predicate.
func hasMsg(recs []map[string]any, msg string, pred func(map[string]any) bool) bool {
	for _, m := range recs {
		if m["msg"] != msg {
			continue
		}
		if pred == nil || pred(m) {
			return true
		}
	}
	return false
}

// TestChaosLifecycleReconstructableFromLogs is the observability acceptance
// test: under injected faults, at least one request's full lifecycle —
// fault landing on an attempt, the client retrying, the retried attempt
// served — must be reconstructable by joining the client's and the daemon's
// JSON logs on a single trace ID. Every log line on both sides must parse
// as JSON.
func TestChaosLifecycleReconstructableFromLogs(t *testing.T) {
	var serverBuf, clientBuf syncBuffer
	serverLog, err := obs.NewLogger(&serverBuf, slog.LevelDebug, obs.FormatJSON)
	if err != nil {
		t.Fatal(err)
	}
	// Reject-only faults: deterministic to retry through (no torn
	// connections), and injected rejections bypass the access log, so the
	// join below must go through the injector's own fault_injected line.
	inj := faultinject.New(faultinject.Options{
		Seed:   11,
		Rates:  faultinject.Rates{Reject: 0.3},
		Logger: serverLog,
	})
	_, c := newTestServer(t, Options{
		FaultInjector: inj,
		Logger:        serverLog,
	})
	clientLog, err := obs.NewLogger(&clientBuf, slog.LevelDebug, obs.FormatJSON)
	if err != nil {
		t.Fatal(err)
	}
	c.Logger = clientLog
	c.Retry = fastRetry(5, nil)

	ctx := context.Background()
	for i := 0; i < 40; i++ {
		if _, err := c.NetworkEval(ctx, NoCRequest{Topology: "crossbar", Tiles: 8, TargetBER: 1e-9}); err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if c.Stats().Retries >= 2 {
			break
		}
	}
	if c.Stats().Retries == 0 {
		t.Fatal("no retries at a 30% reject rate over 40 requests; the chaos loop tested nothing")
	}

	serverByTrace := byTrace(logLines(t, serverBuf.Bytes()))
	clientByTrace := byTrace(logLines(t, clientBuf.Bytes()))

	// Find one trace whose whole story is on the record: the daemon logged
	// the injected fault, the client logged the failed attempt and the
	// retry, and the daemon's access log shows the retried attempt served.
	reconstructed := ""
	for id, clientRecs := range clientByTrace {
		if !hasMsg(clientRecs, "attempt_failed", nil) || !hasMsg(clientRecs, "retry", nil) {
			continue
		}
		serverRecs := serverByTrace[id]
		if !hasMsg(serverRecs, "fault_injected", func(m map[string]any) bool {
			return m["mode"] == "reject"
		}) {
			continue
		}
		if !hasMsg(serverRecs, "request", func(m map[string]any) bool {
			st, ok := m["status"].(float64)
			return ok && st == 200
		}) {
			continue
		}
		reconstructed = id
		break
	}
	if reconstructed == "" {
		t.Fatalf("no trace joins fault_injected + attempt_failed + retry + 200 access log\nserver traces: %d, client traces: %d",
			len(serverByTrace), len(clientByTrace))
	}

	// The winning trace's access-log line must carry the request schema the
	// README documents.
	for _, m := range serverByTrace[reconstructed] {
		if m["msg"] != "request" {
			continue
		}
		for _, key := range []string{"route", "status", "duration_ms", "bytes", "span_id"} {
			if _, ok := m[key]; !ok {
				t.Errorf("access log line missing %q: %v", key, m)
			}
		}
	}
}

// TestPprofGated: /debug/pprof/* exists only behind Options.EnablePprof —
// never on a default daemon.
func TestPprofGated(t *testing.T) {
	_, c := newTestServer(t, Options{EnablePprof: true})
	resp, err := http.Get(c.Base + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof index = %d with EnablePprof", resp.StatusCode)
	}
	resp, err = http.Get(c.Base + "/debug/pprof/goroutine?debug=1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("goroutine profile = %d with EnablePprof", resp.StatusCode)
	}

	_, off := newTestServer(t, Options{})
	resp, err = http.Get(off.Base + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Fatal("pprof mounted on a default daemon")
	}
}
