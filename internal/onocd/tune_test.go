package onocd

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"math"
	"net/http"
	"reflect"
	"testing"

	"photonoc/internal/apierr"
	"photonoc/internal/manager"
	"photonoc/internal/noc"
	"photonoc/internal/tune"
)

// tuneTestRequest is a small deterministic campaign the tests share.
func tuneTestRequest() NoCTuneRequest {
	return NoCTuneRequest{
		TargetBER:   1e-11,
		Seed:        7,
		Particles:   4,
		Generations: 3,
	}
}

// TestTuneMatchesLocal runs the same seeded campaign remotely through
// POST /v1/noc/tune and locally through tune.Run against the daemon's own
// engine, and requires the results — final front, accounting, and every
// per-generation front — to round-trip the wire bit for bit.
func TestTuneMatchesLocal(t *testing.T) {
	s, c := newTestServer(t, Options{})
	ctx := context.Background()
	req := tuneTestRequest()

	// The wire's empty objective means min-energy (the HTTP default);
	// tune.Options' zero value is min-power, so set it explicitly.
	opts := tune.Options{
		TargetBER:   req.TargetBER,
		Seed:        req.Seed,
		Particles:   req.Particles,
		Generations: req.Generations,
		Objective:   manager.MinEnergy,
	}
	var localFronts [][]tune.Point
	opts.OnGeneration = func(gen int, front []tune.Point) error {
		localFronts = append(localFronts, front)
		return nil
	}
	want, err := tune.Run(ctx, s.Engine(), opts)
	if err != nil {
		t.Fatal(err)
	}

	var remoteFronts [][]tune.Point
	got, err := c.Tune(ctx, req, func(gen int, front []tune.Point) error {
		if gen != len(remoteFronts) {
			t.Errorf("generation callback %d out of order (have %d)", gen, len(remoteFronts))
		}
		remoteFronts = append(remoteFronts, front)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("remote result differs from local:\n%+v\nvs\n%+v", got, want)
	}
	if !reflect.DeepEqual(remoteFronts, localFronts) {
		t.Errorf("per-generation fronts differ:\n%+v\nvs\n%+v", remoteFronts, localFronts)
	}
	if len(got.Front) == 0 {
		t.Fatal("empty final front")
	}
}

// TestTuneStreamShape reads the raw NDJSON: one front item per generation
// (Index 0..G−1), then the summary at Index G; with ?start_index=N the
// prefix is skipped and the replayed suffix is identical.
func TestTuneStreamShape(t *testing.T) {
	_, c := newTestServer(t, Options{})
	req := tuneTestRequest()
	body, _ := json.Marshal(req)

	fetch := func(path string) []NoCTuneItem {
		t.Helper()
		resp, err := http.Post(c.Base+path, "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", path, resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
			t.Errorf("Content-Type = %q", ct)
		}
		var items []NoCTuneItem
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		for sc.Scan() {
			if len(bytes.TrimSpace(sc.Bytes())) == 0 {
				continue
			}
			var it NoCTuneItem
			if err := json.Unmarshal(sc.Bytes(), &it); err != nil {
				t.Fatalf("decode line: %v", err)
			}
			items = append(items, it)
		}
		return items
	}

	full := fetch("/v1/noc/tune")
	if len(full) != req.Generations+1 {
		t.Fatalf("%d items, want %d", len(full), req.Generations+1)
	}
	for i, it := range full[:req.Generations] {
		if it.Index != i || it.Summary != nil || it.Error != nil || len(it.Front) == 0 {
			t.Fatalf("item %d malformed: %+v", i, it)
		}
	}
	last := full[req.Generations]
	if last.Index != req.Generations || last.Summary == nil {
		t.Fatalf("terminal item malformed: %+v", last)
	}
	if last.Summary.Evaluated != req.Particles*req.Generations {
		t.Errorf("summary evaluated %d, want %d", last.Summary.Evaluated, req.Particles*req.Generations)
	}

	resumed := fetch("/v1/noc/tune?start_index=2")
	if !reflect.DeepEqual(resumed, full[2:]) {
		t.Errorf("resumed suffix differs:\n%+v\nvs\n%+v", resumed, full[2:])
	}
}

// TestTuneBadRequest pins option validation to typed pre-stream errors.
func TestTuneBadRequest(t *testing.T) {
	_, c := newTestServer(t, Options{})
	ctx := context.Background()
	for name, req := range map[string]NoCTuneRequest{
		"missing ber":  {},
		"bad pattern":  {TargetBER: 1e-11, Pattern: "bursty"},
		"bad kind":     {TargetBER: 1e-11, Kinds: []string{"torus"}},
		"bad scheme":   {TargetBER: 1e-11, Rosters: [][]string{{"nope"}}},
		"empty roster": {TargetBER: 1e-11, Rosters: [][]string{{}}},
	} {
		if _, err := c.Tune(ctx, req, nil); !errors.Is(err, apierr.ErrInvalidInput) {
			t.Errorf("%s: error = %v, want ErrInvalidInput", name, err)
		}
	}
}

// TestNetworkEvalZeroTrafficCrossWire is the HTTP layer of the all-silent
// traffic contract: the typed ErrZeroTraffic survives the wire envelope,
// so errors.Is works identically against a remote daemon.
func TestNetworkEvalZeroTrafficCrossWire(t *testing.T) {
	_, c := newTestServer(t, Options{})
	silent := make([][]float64, 4)
	for i := range silent {
		silent[i] = make([]float64, 4)
	}
	_, err := c.NetworkEval(context.Background(), NoCRequest{
		Topology:       "bus",
		Tiles:          4,
		TargetBER:      1e-11,
		Traffic:        silent,
		RateBitsPerSec: 1e9,
	})
	if !errors.Is(err, apierr.ErrZeroTraffic) {
		t.Fatalf("error = %v, want ErrZeroTraffic", err)
	}
	if !errors.Is(err, apierr.ErrInvalidInput) {
		t.Fatalf("error = %v, want ErrInvalidInput too", err)
	}
}

// TestNoCResultInfRoundTrip pins the WFloat wire contract for the rate
// figures: ±Inf saturation, injection and delivered rates — and a
// saturated link's +Inf queue wait — survive JSON in both directions.
func TestNoCResultInfRoundTrip(t *testing.T) {
	res := noc.Result{
		Kind:                          noc.Bus,
		Tiles:                         4,
		Links:                         1,
		TargetBER:                     1e-11,
		Feasible:                      true,
		SaturationInjectionBitsPerSec: math.Inf(1),
		InjectionRateBitsPerSec:       math.Inf(1),
		DeliveredBitsPerSec:           math.Inf(-1),
		Saturated:                     true,
		Loads: []noc.LinkLoad{{
			Link:               0,
			CapacityBitsPerSec: 1e9,
			OfferedBitsPerSec:  2e9,
			Utilization:        2,
			QueueWaitSec:       math.Inf(1),
		}},
		MeanLatencySec: math.Inf(1),
		P50LatencySec:  math.Inf(1),
		P95LatencySec:  math.Inf(1),
		P99LatencySec:  math.Inf(1),
		MaxLatencySec:  math.Inf(1),
	}
	raw, err := json.Marshal(toWireNoC(res))
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(raw, []byte("null")) {
		t.Fatalf("wire JSON lost a non-finite value to null: %s", raw)
	}
	var back NoCResult
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	got, err := back.Core()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, res) {
		t.Fatalf("round trip mutated the result:\n%+v\nvs\n%+v", got, res)
	}
}
