package onocd

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"photonoc/internal/apierr"
	"photonoc/internal/engine"
	"photonoc/internal/faultinject"
	"photonoc/internal/noc"
	"photonoc/internal/obs"
	"photonoc/internal/resilience"
)

// fastRetry is a test policy: real retry semantics, recorded (not slept)
// backoff.
func fastRetry(attempts int, sleeps *[]time.Duration) *resilience.Retrier {
	return resilience.NewRetrier(resilience.Policy{
		MaxAttempts: attempts,
		Sleep: func(_ context.Context, d time.Duration) error {
			if sleeps != nil {
				*sleeps = append(*sleeps, d)
			}
			return nil
		},
	})
}

// TestClientRetriesOverloadedWithRetryAfterFloor: a 429 with Retry-After: 1
// is retried, every backoff drawn at or above the advertised floor, and the
// call succeeds once the server recovers — without a single real sleep.
func TestClientRetriesOverloadedWithRetryAfterFloor(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "1")
			status, env := apierr.EnvelopeFor(fmt.Errorf("%w: drill", apierr.ErrOverloaded))
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(status)
			json.NewEncoder(w).Encode(env)
			return
		}
		io := json.NewEncoder(w)
		w.Header().Set("Content-Type", "application/json")
		io.Encode(StatusResponse{Service: "onocd"})
	}))
	defer srv.Close()

	var sleeps []time.Duration
	c := NewClient(srv.URL)
	c.Retry = fastRetry(4, &sleeps)
	st, err := c.Statusz(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Service != "onocd" {
		t.Fatalf("service = %q", st.Service)
	}
	if calls.Load() != 3 {
		t.Fatalf("server saw %d calls, want 3 (two 429s, one success)", calls.Load())
	}
	if len(sleeps) != 2 {
		t.Fatalf("recorded %d backoffs, want 2", len(sleeps))
	}
	for i, d := range sleeps {
		if d < time.Second {
			t.Errorf("backoff %d = %v, below the Retry-After floor of 1s", i, d)
		}
	}
	cs := c.Stats()
	if cs.Requests != 1 || cs.Attempts != 3 || cs.Retries != 2 {
		t.Errorf("stats = %+v, want 1 request / 3 attempts / 2 retries", cs)
	}
}

// TestClientDoesNotRetryDeterministicErrors: a 400 is the server's final
// word — one attempt, typed sentinel, no backoff.
func TestClientDoesNotRetryDeterministicErrors(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		status, env := apierr.EnvelopeFor(fmt.Errorf("%w: bad grid", apierr.ErrInvalidInput))
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		json.NewEncoder(w).Encode(env)
	}))
	defer srv.Close()

	var sleeps []time.Duration
	c := NewClient(srv.URL)
	c.Retry = fastRetry(4, &sleeps)
	_, err := c.Sweep(context.Background(), SweepRequest{TargetBERs: []float64{1e-9}})
	if !errors.Is(err, apierr.ErrInvalidInput) {
		t.Fatalf("err = %v, want ErrInvalidInput", err)
	}
	if calls.Load() != 1 || len(sleeps) != 0 {
		t.Fatalf("calls = %d, sleeps = %d; deterministic errors must not retry", calls.Load(), len(sleeps))
	}
}

// TestClientBreakerOpensOnDeadEndpoint: a dead endpoint trips the breaker
// after the failure threshold; further attempts fail fast with ErrOpen and
// the trip is visible in Stats.
func TestClientBreakerOpensOnDeadEndpoint(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		status, env := apierr.EnvelopeFor(fmt.Errorf("%w: down for repairs", apierr.ErrUnavailable))
		w.WriteHeader(status)
		json.NewEncoder(w).Encode(env)
	}))
	defer srv.Close()

	frozen := time.Unix(1000, 0)
	c := NewClient(srv.URL)
	c.Retry = fastRetry(8, nil)
	c.Breaker = resilience.NewBreaker(resilience.BreakerOptions{
		FailureThreshold: 3,
		Cooldown:         time.Minute,
		Now:              func() time.Time { return frozen }, // never cools down
	})
	err := c.Healthz(context.Background())
	if !errors.Is(err, resilience.ErrOpen) {
		t.Fatalf("err = %v, want ErrOpen once the circuit trips", err)
	}
	cs := c.Stats()
	if cs.Breaker.Trips != 1 || cs.Breaker.State != resilience.Open {
		t.Fatalf("breaker stats = %+v, want one trip, open", cs.Breaker)
	}
	if cs.Attempts != 3 {
		t.Fatalf("attempts = %d, want exactly the 3 that tripped the circuit", cs.Attempts)
	}
}

// TestTruncatedStreamTypedError: a stream cut mid-line surfaces (with
// retries disabled) as ErrTruncatedStream carrying the last intact index.
func TestTruncatedStreamTypedError(t *testing.T) {
	item := func(i int) string {
		raw, _ := json.Marshal(NoCStreamItem{Index: i, TargetBER: 1e-9, Result: &NoCResult{Kind: "crossbar"}})
		return string(raw) + "\n"
	}
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		fmt.Fprint(w, item(0))
		fmt.Fprint(w, item(1))
		fmt.Fprint(w, item(2)[:9]) // cut inside item 2
		w.(http.Flusher).Flush()
		panic(http.ErrAbortHandler)
	}))
	defer srv.Close()

	c := NewClient(srv.URL)
	c.Retry = resilience.NewRetrier(resilience.NoRetry())
	var got []int
	err := c.NetworkSweep(context.Background(), NoCRequest{TargetBERs: []float64{1e-9, 1e-10, 1e-11}},
		func(i int, _ float64, _ noc.Result) error {
			got = append(got, i)
			return nil
		})
	if !errors.Is(err, ErrTruncatedStream) {
		t.Fatalf("err = %v, want ErrTruncatedStream", err)
	}
	var te *TruncatedStreamError
	if !errors.As(err, &te) || te.LastIndex != 1 {
		t.Fatalf("err = %#v, want *TruncatedStreamError with LastIndex 1", err)
	}
	if len(got) != 2 {
		t.Fatalf("delivered %d items before the cut, want 2", len(got))
	}
	if c.Stats().TruncatedStreams != 1 {
		t.Fatalf("stats = %+v, want one recorded truncation", c.Stats())
	}
}

// truncateOnce cuts the body of the first matching response a few bytes
// into its (lines+1)-th NDJSON line; every later request passes through
// untouched.
type truncateOnce struct {
	next   http.RoundTripper
	path   string
	lines  int
	fired  atomic.Bool
	resume atomic.Int64 // start_index observed on the follow-up request
}

func (t *truncateOnce) RoundTrip(req *http.Request) (*http.Response, error) {
	if req.URL.Path == t.path {
		if v := req.URL.Query().Get("start_index"); v != "" {
			var n int
			fmt.Sscanf(v, "%d", &n)
			t.resume.Store(int64(n))
		}
	}
	resp, err := t.next.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	if req.URL.Path == t.path && t.fired.CompareAndSwap(false, true) {
		out := *resp
		out.Body = &cutBody{src: resp.Body, lines: t.lines, extra: 5}
		out.ContentLength = -1
		return &out, nil
	}
	return resp, nil
}

// TestResumedBatchStreamByteIdentical is the resume property test: a
// /v1/noc/batch stream truncated mid-flight and resumed via start_index
// delivers exactly the items an uninterrupted run delivers, byte for byte
// in wire order, with the resume visible in the client stats.
func TestResumedBatchStreamByteIdentical(t *testing.T) {
	_, c := newTestServer(t, Options{})
	items := []NoCBatchItem{
		{NoCRequest: NoCRequest{Topology: "crossbar", Tiles: 8, TargetBER: 1e-9}},
		{NoCRequest: NoCRequest{Topology: "crossbar", Tiles: 8, TargetBER: 1e-11}},
		{NoCRequest: NoCRequest{Topology: "mesh", Tiles: 9, TargetBER: 1e-9}},
		{NoCRequest: NoCRequest{Topology: "ring", Tiles: 6, TargetBER: 1e-10}},
	}
	collect := func(c *Client) (lines []string) {
		t.Helper()
		err := c.NetworkBatch(context.Background(), items, func(i int, ber float64, res noc.Result) error {
			raw, err := json.Marshal(struct {
				I   int        `json:"i"`
				BER float64    `json:"ber"`
				Res noc.Result `json:"res"`
			}{i, ber, res})
			if err != nil {
				return err
			}
			lines = append(lines, string(raw))
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return lines
	}

	want := collect(c)
	if len(want) != len(items) {
		t.Fatalf("clean run delivered %d items", len(want))
	}

	// Same server, new client whose first batch response is cut a few bytes
	// into item 2's line, forcing a resume at start_index=2.
	flaky := NewClient(c.Base)
	flaky.Retry = fastRetry(4, nil)
	tr := &truncateOnce{next: http.DefaultTransport, path: "/v1/noc/batch", lines: 2}
	flaky.HTTP = &http.Client{Transport: tr}
	got := collect(flaky)

	if len(got) != len(want) {
		t.Fatalf("resumed run delivered %d items, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("item %d differs after resume:\n%s\nvs\n%s", i, got[i], want[i])
		}
	}
	cs := flaky.Stats()
	if cs.TruncatedStreams == 0 || cs.ResumedStreams == 0 {
		t.Fatalf("stats = %+v, want the truncation and the resume recorded", cs)
	}
	if tr.resume.Load() == 0 {
		t.Fatal("follow-up request carried no start_index")
	}
}

// TestNetworkBatchPartialRoundTrip: continue_on_error batches round-trip
// per-candidate failures as typed indexed records while every healthy
// candidate still evaluates — including a candidate that fails wire-level
// conversion (unknown scheme) and so never reaches the engine.
func TestNetworkBatchPartialRoundTrip(t *testing.T) {
	_, c := newTestServer(t, Options{})
	items := []NoCBatchItem{
		{NoCRequest: NoCRequest{Topology: "crossbar", Tiles: 8, TargetBER: 1e-9}},
		{NoCRequest: NoCRequest{Topology: "crossbar", Tiles: 8, TargetBER: 0.7}}, // invalid BER → engine rejects
		{NoCRequest: NoCRequest{Topology: "mesh", Tiles: 9, TargetBER: 1e-9}},
		{NoCRequest: NoCRequest{Topology: "crossbar", Tiles: 8, TargetBER: 1e-9}, Schemes: []string{"martian"}}, // conversion error
		{NoCRequest: NoCRequest{Topology: "ring", Tiles: 6, TargetBER: 1e-10}},
	}
	got := map[int]noc.Result{}
	err := c.NetworkBatchPartial(context.Background(), items, func(i int, _ float64, res noc.Result) error {
		got[i] = res
		return nil
	})
	var be *engine.BatchErrors
	if !errors.As(err, &be) {
		t.Fatalf("err = %v, want *engine.BatchErrors", err)
	}
	if len(be.Errors) != 2 || be.Errors[0].Index != 1 || be.Errors[1].Index != 3 {
		t.Fatalf("failure records = %+v, want indices 1 and 3", be.Errors)
	}
	if !errors.Is(be.Errors[0], apierr.ErrInvalidInput) || !errors.Is(be.Errors[1], apierr.ErrInvalidInput) {
		t.Fatalf("record causes not typed: %v / %v", be.Errors[0], be.Errors[1])
	}
	if !strings.Contains(be.Errors[1].Err.Error(), "martian") {
		t.Fatalf("conversion record lost its cause: %v", be.Errors[1])
	}
	for _, i := range []int{0, 2, 4} {
		if _, ok := got[i]; !ok {
			t.Errorf("healthy candidate %d was not delivered", i)
		}
	}
	if len(got) != 3 {
		t.Fatalf("delivered %d results, want 3", len(got))
	}

	// Strict mode on the same population still aborts on the first failure.
	strictErr := c.NetworkBatch(context.Background(), items, func(int, float64, noc.Result) error { return nil })
	if strictErr == nil || errors.As(strictErr, &be) {
		t.Fatalf("strict batch err = %v, want a terminal (non-aggregate) error", strictErr)
	}
}

// TestChaosClosedLoop drives the resilient client through a server with a
// seeded 20% fault mix (latency, 429, 503, resets, truncations): every
// logical call must succeed, the breaker must not wedge, and truncated
// streams must resume. Seeded faults + injected sleep make it
// deterministic.
func TestChaosClosedLoop(t *testing.T) {
	inj := faultinject.NewSpread(7, 0.20)
	_, c := newTestServer(t, Options{FaultInjector: inj})
	c.Retry = resilience.NewRetrier(resilience.Policy{
		MaxAttempts: 8,
		Sleep:       func(context.Context, time.Duration) error { return nil },
	})
	ctx := context.Background()

	items := []NoCBatchItem{
		{NoCRequest: NoCRequest{Topology: "crossbar", Tiles: 8, TargetBER: 1e-9}},
		{NoCRequest: NoCRequest{Topology: "crossbar", Tiles: 8, TargetBER: 1e-11}},
		{NoCRequest: NoCRequest{Topology: "mesh", Tiles: 9, TargetBER: 1e-9}},
	}
	for round := 0; round < 30; round++ {
		if _, err := c.NetworkEval(ctx, NoCRequest{Topology: "crossbar", Tiles: 8, TargetBER: 1e-9}); err != nil {
			t.Fatalf("round %d eval: %v", round, err)
		}
		n := 0
		err := c.NetworkSweep(ctx, NoCRequest{Topology: "crossbar", Tiles: 8, TargetBERs: []float64{1e-9, 1e-10, 1e-11}},
			func(int, float64, noc.Result) error { n++; return nil })
		if err != nil || n != 3 {
			t.Fatalf("round %d sweep: %d items, %v", round, n, err)
		}
		n = 0
		if err := c.NetworkBatch(ctx, items, func(int, float64, noc.Result) error { n++; return nil }); err != nil || n != len(items) {
			t.Fatalf("round %d batch: %d items, %v", round, n, err)
		}
	}
	cs := c.Stats()
	if cs.Requests != 90 {
		t.Fatalf("requests = %d, want 90", cs.Requests)
	}
	if cs.Attempts < cs.Requests {
		t.Fatalf("attempts %d < requests %d", cs.Attempts, cs.Requests)
	}
	amp := float64(cs.Attempts) / float64(cs.Requests)
	if amp > 2.0 {
		t.Fatalf("retry amplification %.2f at a 20%% fault rate, breaker/backoff not containing retries", amp)
	}
	if fc := inj.Counts(); fc.Faults() == 0 {
		t.Fatal("the injector never fired — the chaos loop tested nothing")
	}
	t.Logf("chaos: %d requests, %d attempts (%.2fx), %d truncated, %d resumed, breaker %+v, faults %+v",
		cs.Requests, cs.Attempts, amp, cs.TruncatedStreams, cs.ResumedStreams, cs.Breaker, inj.Counts())
}

// TestRetryAfterFloorForms: both RFC 9110 Retry-After forms parse into a
// backoff floor — delta-seconds exactly, HTTP-date as the remaining time —
// and everything stale or malformed clamps to zero so the client falls back
// to its own schedule.
func TestRetryAfterFloorForms(t *testing.T) {
	mkResp := func(v string) *http.Response {
		h := http.Header{}
		if v != "" {
			h.Set("Retry-After", v)
		}
		return &http.Response{Header: h}
	}
	cases := []struct {
		name     string
		value    string
		min, max time.Duration
	}{
		{"absent", "", 0, 0},
		{"delta_seconds", "3", 3 * time.Second, 3 * time.Second},
		{"delta_zero", "0", 0, 0},
		{"delta_negative", "-5", 0, 0},
		{"http_date_future", time.Now().Add(90 * time.Second).UTC().Format(http.TimeFormat), 80 * time.Second, 90 * time.Second},
		{"http_date_past", time.Now().Add(-time.Hour).UTC().Format(http.TimeFormat), 0, 0},
		{"rfc850_future", time.Now().Add(90 * time.Second).UTC().Format("Monday, 02-Jan-06 15:04:05 GMT"), 80 * time.Second, 90 * time.Second},
		{"ansi_c_future", time.Now().Add(90 * time.Second).UTC().Format(time.ANSIC), 80 * time.Second, 90 * time.Second},
		{"garbage", "soon", 0, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := retryAfterFloor(mkResp(tc.value))
			if got < tc.min || got > tc.max {
				t.Errorf("retryAfterFloor(%q) = %v, want in [%v, %v]", tc.value, got, tc.min, tc.max)
			}
		})
	}
}

// TestClientRetriesHTTPDateRetryAfter: a 429 whose Retry-After is an
// HTTP-date (the proxy form) floors the backoff just like delta-seconds.
func TestClientRetriesHTTPDateRetryAfter(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", time.Now().Add(30*time.Second).UTC().Format(http.TimeFormat))
			status, env := apierr.EnvelopeFor(fmt.Errorf("%w: drill", apierr.ErrOverloaded))
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(status)
			json.NewEncoder(w).Encode(env)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(StatusResponse{Service: "onocd"})
	}))
	defer srv.Close()

	var sleeps []time.Duration
	c := NewClient(srv.URL)
	c.Retry = fastRetry(4, &sleeps)
	if _, err := c.Statusz(context.Background()); err != nil {
		t.Fatal(err)
	}
	if len(sleeps) != 1 {
		t.Fatalf("recorded %d backoffs, want 1", len(sleeps))
	}
	// The floor was ~30s at parse time; anything at or above 25s proves the
	// date form reached the backoff (the default jittered backoff alone is
	// far below a second on attempt one).
	if sleeps[0] < 25*time.Second {
		t.Errorf("backoff = %v, HTTP-date Retry-After floor not applied", sleeps[0])
	}
}

// TestClientPropagatesTraceparent: every outbound attempt carries a W3C
// traceparent; retried attempts share one trace ID but get distinct span
// IDs, so server-side access logs can join a whole logical call.
func TestClientPropagatesTraceparent(t *testing.T) {
	var mu sync.Mutex
	var seen []string
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		seen = append(seen, r.Header.Get("Traceparent"))
		mu.Unlock()
		if calls.Add(1) == 1 {
			status, env := apierr.EnvelopeFor(fmt.Errorf("%w: drill", apierr.ErrOverloaded))
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(status)
			json.NewEncoder(w).Encode(env)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(StatusResponse{Service: "onocd"})
	}))
	defer srv.Close()

	c := NewClient(srv.URL)
	c.Retry = fastRetry(4, nil)
	if _, err := c.Statusz(context.Background()); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(seen) != 2 {
		t.Fatalf("server saw %d attempts, want 2", len(seen))
	}
	var scs []obs.SpanContext
	for i, tp := range seen {
		sc, err := obs.ParseTraceparent(tp)
		if err != nil {
			t.Fatalf("attempt %d traceparent %q: %v", i, tp, err)
		}
		scs = append(scs, sc)
	}
	if scs[0].TraceID != scs[1].TraceID {
		t.Errorf("attempts split across traces: %s vs %s", scs[0].TraceID, scs[1].TraceID)
	}
	if scs[0].SpanID == scs[1].SpanID {
		t.Error("retried attempt reused the span ID; each attempt needs its own span")
	}
}

// TestClientContinuesCallerTrace: a caller-supplied span context becomes the
// parent — the outbound trace ID matches the caller's, not a fresh root.
func TestClientContinuesCallerTrace(t *testing.T) {
	var got string
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		got = r.Header.Get("Traceparent")
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(StatusResponse{Service: "onocd"})
	}))
	defer srv.Close()

	root := obs.NewSpanContext()
	ctx := obs.ContextWithSpan(context.Background(), root)
	c := NewClient(srv.URL)
	if _, err := c.Statusz(ctx); err != nil {
		t.Fatal(err)
	}
	sc, err := obs.ParseTraceparent(got)
	if err != nil {
		t.Fatalf("traceparent %q: %v", got, err)
	}
	if sc.TraceID != root.TraceID {
		t.Errorf("outbound trace %s, want caller's %s", sc.TraceID, root.TraceID)
	}
	if sc.SpanID == root.SpanID {
		t.Error("outbound span reused the caller's span ID; want a child span")
	}
}
