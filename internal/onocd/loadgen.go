package onocd

import (
	"context"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"photonoc/internal/noc"
)

// LoadOptions parameterizes one closed-loop load phase: Clients goroutines
// each issue the next request as soon as the previous one returns, until
// Requests have been issued in total.
type LoadOptions struct {
	// Clients is the number of concurrent closed-loop clients (default 8).
	Clients int
	// Requests is the total request count across all clients (default 1000).
	Requests int
	// MakeRequest builds the i-th request body (nil = a fixed
	// paper-roster sweep at BER 1e-11, the warm-cache steady state).
	MakeRequest func(i int) SweepRequest
}

// LoadStats is the outcome of one load phase. QPS and the latency
// percentiles describe the Completed sample only — a run where every
// request fails (100% fault rate, a breaker stuck open) reports
// Completed 0, QPS 0 and zeroed percentiles, never NaN.
type LoadStats struct {
	Requests  int           `json:"requests"`
	Completed int           `json:"completed"`
	Non2xx    int           `json:"non_2xx"`
	Elapsed   time.Duration `json:"elapsed_ns"`
	QPS       float64       `json:"qps"`
	P50       time.Duration `json:"p50_ns"`
	P90       time.Duration `json:"p90_ns"`
	P99       time.Duration `json:"p99_ns"`
	Max       time.Duration `json:"max_ns"`
	// FirstError samples one failure for diagnostics.
	FirstError string `json:"first_error,omitempty"`
}

// RunLoad drives a daemon with a closed loop of identical-shaped sweep
// requests and aggregates throughput and latency percentiles over the
// requests that completed. It is the engine behind cmd/onocload and the
// service benchmark in onocbench.
func RunLoad(ctx context.Context, c *Client, opts LoadOptions) (LoadStats, error) {
	if opts.Clients <= 0 {
		opts.Clients = 8
	}
	if opts.Requests <= 0 {
		opts.Requests = 1000
	}
	makeReq := opts.MakeRequest
	if makeReq == nil {
		makeReq = func(int) SweepRequest {
			return SweepRequest{TargetBERs: []float64{1e-11}}
		}
	}

	var (
		next      atomic.Int64
		attempts  atomic.Int64
		non2xx    atomic.Int64
		firstErr  atomic.Value
		wg        sync.WaitGroup
		latencies = make([][]time.Duration, opts.Clients)
	)
	start := time.Now()
	for cl := 0; cl < opts.Clients; cl++ {
		wg.Add(1)
		go func(cl int) {
			defer wg.Done()
			lats := make([]time.Duration, 0, opts.Requests/opts.Clients+1)
			for {
				i := int(next.Add(1)) - 1
				if i >= opts.Requests || ctx.Err() != nil {
					break
				}
				t0 := time.Now()
				_, err := c.Sweep(ctx, makeReq(i))
				attempts.Add(1)
				if err != nil {
					non2xx.Add(1)
					firstErr.CompareAndSwap(nil, err.Error())
					continue
				}
				lats = append(lats, time.Since(t0))
			}
			latencies[cl] = lats
		}(cl)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if err := ctx.Err(); err != nil {
		return LoadStats{}, err
	}

	var all []time.Duration
	for _, l := range latencies {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	stats := LoadStats{
		Requests:  int(attempts.Load()),
		Completed: len(all),
		Non2xx:    int(non2xx.Load()),
		Elapsed:   elapsed,
		QPS:       float64(len(all)) / elapsed.Seconds(),
	}
	if msg, ok := firstErr.Load().(string); ok {
		stats.FirstError = msg
	}
	if len(all) > 0 {
		pct := func(q float64) time.Duration {
			idx := int(q * float64(len(all)-1))
			return all[idx]
		}
		stats.P50 = pct(0.50)
		stats.P90 = pct(0.90)
		stats.P99 = pct(0.99)
		stats.Max = all[len(all)-1]
	}
	return stats, nil
}

// WriteTable renders the stats as the aligned row cmd/onocload prints.
// With nothing completed there is no latency sample, so the percentile
// columns would be fabrications — an explicit "0 completed" line replaces
// them.
func (s LoadStats) WriteTable(w io.Writer, label string) {
	if s.Completed == 0 {
		fmt.Fprintf(w, "%-8s %8d req %4d non-2xx   0 completed (no latency sample)\n",
			label, s.Requests, s.Non2xx)
		return
	}
	fmt.Fprintf(w, "%-8s %8d req %4d non-2xx %10.1f qps   p50 %10s  p90 %10s  p99 %10s  max %10s\n",
		label, s.Requests, s.Non2xx, s.QPS, s.P50, s.P90, s.P99, s.Max)
}

// StreamLoadOptions parameterizes the resumable-stream phase of the load
// harness: Streams sequential /v1/noc/batch NDJSON calls over the same
// candidate list, a leading fraction of which get their first response
// forcibly cut mid-line to exercise the client's start_index resume path.
type StreamLoadOptions struct {
	// Streams is the number of batch stream calls to run.
	Streams int
	// TruncateFraction is the fraction of streams (rounded up) whose first
	// response is cut a few bytes into its second NDJSON line. Meaningful
	// only with >= 2 candidates — a cut after the final line is just EOF.
	TruncateFraction float64
	// Items is the candidate list every stream evaluates.
	Items []NoCBatchItem
}

// StreamLoadStats aggregates the stream phase across all runs.
type StreamLoadStats struct {
	Streams           int    `json:"streams"`
	Items             int    `json:"items"`
	Failures          int    `json:"failures"`
	ForcedTruncations int    `json:"forced_truncations"`
	Requests          uint64 `json:"requests"`
	Attempts          uint64 `json:"attempts"`
	Retries           uint64 `json:"retries"`
	Resumed           uint64 `json:"resumed"`
	Truncated         uint64 `json:"truncated"`
	BreakerTrips      uint64 `json:"breaker_trips"`
	FirstError        string `json:"first_error,omitempty"`
}

// RunStreamLoad runs the resumable-stream phase against the daemon at base.
// Each stream gets a fresh client (so the per-stream resilience counters
// aggregate cleanly); httpc supplies the shared transport, and forced
// truncations wrap it per-stream. Failures are counted, not fatal — the
// caller's assert flags decide whether they sink the run.
func RunStreamLoad(ctx context.Context, base string, httpc *http.Client, opts StreamLoadOptions) (StreamLoadStats, error) {
	st := StreamLoadStats{Streams: opts.Streams}
	if opts.Streams <= 0 || len(opts.Items) == 0 {
		return st, nil
	}
	forced := int(math.Ceil(opts.TruncateFraction * float64(opts.Streams)))
	if forced > opts.Streams {
		forced = opts.Streams
	}
	st.ForcedTruncations = forced
	for j := 0; j < opts.Streams; j++ {
		if err := ctx.Err(); err != nil {
			return st, err
		}
		sc := NewClient(base)
		sc.HTTP = httpc
		if j < forced {
			rt := http.RoundTripper(http.DefaultTransport)
			var timeout time.Duration
			if httpc != nil {
				timeout = httpc.Timeout
				if httpc.Transport != nil {
					rt = httpc.Transport
				}
			}
			sc.HTTP = &http.Client{
				Timeout:   timeout,
				Transport: &chopTransport{next: rt, path: "/v1/noc/batch", lines: 1},
			}
		}
		n := 0
		err := sc.NetworkBatch(ctx, opts.Items, func(int, float64, noc.Result) error {
			n++
			return nil
		})
		st.Items += n
		if err != nil {
			st.Failures++
			if st.FirstError == "" {
				st.FirstError = err.Error()
			}
		}
		cs := sc.Stats()
		st.Requests += cs.Requests
		st.Attempts += cs.Attempts
		st.Retries += cs.Retries
		st.Resumed += cs.ResumedStreams
		st.Truncated += cs.TruncatedStreams
		st.BreakerTrips += cs.Breaker.Trips
	}
	return st, nil
}

// chopTransport cuts the body of the first response on path a few bytes
// into its (lines+1)-th NDJSON line; every other response passes through.
type chopTransport struct {
	next  http.RoundTripper
	path  string
	lines int

	mu    sync.Mutex
	fired bool
}

// RoundTrip implements http.RoundTripper.
func (t *chopTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	resp, err := t.next.RoundTrip(req)
	if err != nil || req.URL.Path != t.path {
		return resp, err
	}
	t.mu.Lock()
	fire := !t.fired
	t.fired = true
	t.mu.Unlock()
	if !fire {
		return resp, nil
	}
	out := *resp
	out.Body = &cutBody{src: resp.Body, lines: t.lines, extra: 5}
	out.ContentLength = -1
	return &out, nil
}

// cutBody passes through `lines` complete NDJSON lines plus `extra` bytes
// of the next one, then fails like a torn connection. A body that ends
// before the budget is spent passes through untouched — no truncation to
// simulate if there was nothing left to cut.
type cutBody struct {
	src   io.ReadCloser
	lines int
	extra int
	done  bool
}

// Read implements io.Reader.
func (b *cutBody) Read(p []byte) (int, error) {
	if b.done {
		return 0, io.ErrUnexpectedEOF
	}
	n, err := b.src.Read(p)
	for i := 0; i < n; i++ {
		if b.lines > 0 {
			if p[i] == '\n' {
				b.lines--
			}
			continue
		}
		if b.extra == 0 {
			b.done = true
			return i, io.ErrUnexpectedEOF
		}
		b.extra--
	}
	return n, err
}

// Close implements io.Closer.
func (b *cutBody) Close() error { return b.src.Close() }
