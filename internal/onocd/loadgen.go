package onocd

import (
	"context"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// LoadOptions parameterizes one closed-loop load phase: Clients goroutines
// each issue the next request as soon as the previous one returns, until
// Requests have been issued in total.
type LoadOptions struct {
	// Clients is the number of concurrent closed-loop clients (default 8).
	Clients int
	// Requests is the total request count across all clients (default 1000).
	Requests int
	// MakeRequest builds the i-th request body (nil = a fixed
	// paper-roster sweep at BER 1e-11, the warm-cache steady state).
	MakeRequest func(i int) SweepRequest
}

// LoadStats is the outcome of one load phase.
type LoadStats struct {
	Requests int           `json:"requests"`
	Non2xx   int           `json:"non_2xx"`
	Elapsed  time.Duration `json:"elapsed_ns"`
	QPS      float64       `json:"qps"`
	P50      time.Duration `json:"p50_ns"`
	P90      time.Duration `json:"p90_ns"`
	P99      time.Duration `json:"p99_ns"`
	Max      time.Duration `json:"max_ns"`
	// FirstError samples one failure for diagnostics.
	FirstError string `json:"first_error,omitempty"`
}

// RunLoad drives a daemon with a closed loop of identical-shaped sweep
// requests and aggregates throughput and latency percentiles. It is the
// engine behind cmd/onocload and the service benchmark in onocbench.
func RunLoad(ctx context.Context, c *Client, opts LoadOptions) (LoadStats, error) {
	if opts.Clients <= 0 {
		opts.Clients = 8
	}
	if opts.Requests <= 0 {
		opts.Requests = 1000
	}
	makeReq := opts.MakeRequest
	if makeReq == nil {
		makeReq = func(int) SweepRequest {
			return SweepRequest{TargetBERs: []float64{1e-11}}
		}
	}

	var (
		next      atomic.Int64
		non2xx    atomic.Int64
		firstErr  atomic.Value
		wg        sync.WaitGroup
		latencies = make([][]time.Duration, opts.Clients)
	)
	start := time.Now()
	for cl := 0; cl < opts.Clients; cl++ {
		wg.Add(1)
		go func(cl int) {
			defer wg.Done()
			lats := make([]time.Duration, 0, opts.Requests/opts.Clients+1)
			for {
				i := int(next.Add(1)) - 1
				if i >= opts.Requests || ctx.Err() != nil {
					break
				}
				t0 := time.Now()
				_, err := c.Sweep(ctx, makeReq(i))
				lats = append(lats, time.Since(t0))
				if err != nil {
					non2xx.Add(1)
					firstErr.CompareAndSwap(nil, err.Error())
				}
			}
			latencies[cl] = lats
		}(cl)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if err := ctx.Err(); err != nil {
		return LoadStats{}, err
	}

	var all []time.Duration
	for _, l := range latencies {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	stats := LoadStats{
		Requests: len(all),
		Non2xx:   int(non2xx.Load()),
		Elapsed:  elapsed,
		QPS:      float64(len(all)) / elapsed.Seconds(),
	}
	if msg, ok := firstErr.Load().(string); ok {
		stats.FirstError = msg
	}
	if len(all) > 0 {
		pct := func(q float64) time.Duration {
			idx := int(q * float64(len(all)-1))
			return all[idx]
		}
		stats.P50 = pct(0.50)
		stats.P90 = pct(0.90)
		stats.P99 = pct(0.99)
		stats.Max = all[len(all)-1]
	}
	return stats, nil
}

// WriteTable renders the stats as the aligned row cmd/onocload prints.
func (s LoadStats) WriteTable(w io.Writer, label string) {
	fmt.Fprintf(w, "%-8s %8d req %4d non-2xx %10.1f qps   p50 %10s  p90 %10s  p99 %10s  max %10s\n",
		label, s.Requests, s.Non2xx, s.QPS, s.P50, s.P90, s.P99, s.Max)
}
