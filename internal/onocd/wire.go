// Package onocd is the production evaluation service over the photonoc
// Engine: an HTTP/JSON daemon (stdlib net/http only) serving sweep, decide,
// network-evaluate, network-simulate and Monte-Carlo-validate queries at
// high concurrency, with request coalescing and the sharded LRU underneath,
// per-request deadlines, semaphore admission control (429 + Retry-After),
// Prometheus-text metrics, hot config reload and graceful drain. cmd/onocd
// wraps it in a daemon; cmd/onocload drives it with a closed-loop load
// harness; onocnet/onocsim reach it through Client via their -remote flag.
package onocd

import (
	"fmt"
	"math"
	"strconv"

	"photonoc/internal/apierr"
	"photonoc/internal/core"
	"photonoc/internal/ecc"
	"photonoc/internal/engine"
	"photonoc/internal/manager"
	"photonoc/internal/netsim"
	"photonoc/internal/noc"
	"photonoc/internal/onoc"
	"photonoc/internal/tune"
)

// WFloat is a float64 whose JSON form survives non-finite values: finite
// numbers marshal as plain JSON numbers, while ±Inf and NaN marshal as the
// strings "Inf", "-Inf" and "NaN" (encoding/json rejects them as numbers).
// Saturated operating points carry +Inf queue waits and latency
// percentiles, and the wire must not lose that.
type WFloat float64

// MarshalJSON implements json.Marshaler. Finite values reproduce
// encoding/json's own float notation byte for byte ('f' except for
// exponents beyond its ±range, with the two-digit exponent de-padded), so
// promoting a plain float64 field to WFloat never changes the wire bytes
// of finite values.
func (f WFloat) MarshalJSON() ([]byte, error) {
	v := float64(f)
	switch {
	case math.IsInf(v, 1):
		return []byte(`"Inf"`), nil
	case math.IsInf(v, -1):
		return []byte(`"-Inf"`), nil
	case math.IsNaN(v):
		return []byte(`"NaN"`), nil
	}
	format := byte('f')
	if abs := math.Abs(v); abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	b := strconv.AppendFloat(nil, v, format, -1, 64)
	if format == 'e' {
		if n := len(b); n >= 4 && b[n-4] == 'e' && b[n-3] == '-' && b[n-2] == '0' {
			b[n-2] = b[n-1]
			b = b[:n-1]
		}
	}
	return b, nil
}

// UnmarshalJSON implements json.Unmarshaler.
func (f *WFloat) UnmarshalJSON(b []byte) error {
	switch string(b) {
	case `"Inf"`, `"+Inf"`:
		*f = WFloat(math.Inf(1))
		return nil
	case `"-Inf"`:
		*f = WFloat(math.Inf(-1))
		return nil
	case `"NaN"`:
		*f = WFloat(math.NaN())
		return nil
	}
	v, err := strconv.ParseFloat(string(b), 64)
	if err != nil {
		return fmt.Errorf("onocd: WFloat %q: %w", b, err)
	}
	*f = WFloat(v)
	return nil
}

// parseObjective maps the CLI/wire spelling to the manager objective; the
// empty string defaults to min-energy, matching the onocnet CLI default.
func parseObjective(s string) (manager.Objective, error) {
	switch s {
	case "", "min-energy":
		return manager.MinEnergy, nil
	case "min-power":
		return manager.MinPower, nil
	case "min-latency":
		return manager.MinLatency, nil
	default:
		return 0, fmt.Errorf("%w: unknown objective %q (want min-power|min-energy|min-latency)", apierr.ErrInvalidInput, s)
	}
}

// ResolveSchemes maps wire scheme names onto codes from the extended
// registry; nil/empty means the engine roster (returned as nil).
func ResolveSchemes(names []string) ([]ecc.Code, error) {
	if len(names) == 0 {
		return nil, nil
	}
	codes := make([]ecc.Code, len(names))
	for i, n := range names {
		c, ok := ecc.SchemeByName(n)
		if !ok {
			return nil, fmt.Errorf("%w: unknown scheme %q", apierr.ErrInvalidInput, n)
		}
		codes[i] = c
	}
	return codes, nil
}

// SweepRequest is the body of POST /v1/sweep and /v1/sweep/stream.
type SweepRequest struct {
	// Schemes are display names from the extended registry (e.g. "H(7,4)");
	// empty means the daemon's roster.
	Schemes []string `json:"schemes,omitempty"`
	// TargetBERs is the post-decoding BER grid, each in (0, 0.5).
	TargetBERs []float64 `json:"target_bers"`
}

// DecideRequest is the body of POST /v1/decide: one runtime-manager
// configuration request.
type DecideRequest struct {
	TargetBER float64 `json:"target_ber"`
	// MaxCT caps the tolerable communication-time expansion (0 = none).
	MaxCT float64 `json:"max_ct,omitempty"`
	// Objective is min-power|min-energy|min-latency (default min-energy).
	Objective string `json:"objective,omitempty"`
}

// ValidateRequest is the body of POST /v1/validate: one Monte-Carlo
// validation run (see internal/mc for the determinism contract).
type ValidateRequest struct {
	Scheme       string  `json:"scheme"`
	RawBER       float64 `json:"raw_ber"`
	Frames       int64   `json:"frames"`
	TargetRelErr float64 `json:"target_rel_err,omitempty"`
	Shards       int     `json:"shards,omitempty"`
	Seed         int64   `json:"seed,omitempty"`
}

// NoCRequest is the body of POST /v1/noc/eval, /v1/noc/sweep and
// /v1/noc/sim. TargetBER drives eval and sim; TargetBERs drives the sweep;
// the Messages/Seed/MaxQueueDepth tail applies to sim only.
type NoCRequest struct {
	Topology    string  `json:"topology"` // bus|crossbar|ring|mesh
	Tiles       int     `json:"tiles"`
	Columns     int     `json:"columns,omitempty"`
	TilePitchCM float64 `json:"tile_pitch_cm,omitempty"`

	TargetBER  float64   `json:"target_ber,omitempty"`
	TargetBERs []float64 `json:"target_bers,omitempty"`
	Objective  string    `json:"objective,omitempty"`
	// Traffic is a row-normalized (src, dst) matrix; empty means uniform.
	Traffic        [][]float64 `json:"traffic,omitempty"`
	RateBitsPerSec float64     `json:"rate_bits_per_sec,omitempty"`
	MessageBits    int         `json:"message_bits,omitempty"`
	// UseDAC quantizes laser settings through the paper's 6-bit DAC.
	UseDAC bool `json:"use_dac,omitempty"`

	Messages      int   `json:"messages,omitempty"`
	Seed          int64 `json:"seed,omitempty"`
	MaxQueueDepth int   `json:"max_queue_depth,omitempty"`
}

// NoCBatchItem is one NDJSON input line of POST /v1/noc/batch: one
// design-space candidate. It carries the NoCRequest topology and
// evaluation fields (TargetBER, not TargetBERs — each candidate is one
// operating point) plus an optional roster restriction by scheme name.
type NoCBatchItem struct {
	NoCRequest
	// Schemes restricts this candidate to a subset of the registry; empty
	// means the daemon's roster.
	Schemes []string `json:"schemes,omitempty"`
}

// candidate converts one batch line into an engine candidate.
func (it *NoCBatchItem) candidate() (engine.NetworkCandidate, error) {
	if len(it.TargetBERs) != 0 {
		return engine.NetworkCandidate{}, fmt.Errorf("%w: batch candidates take target_ber, not target_bers", apierr.ErrInvalidInput)
	}
	cfg, err := it.topology()
	if err != nil {
		return engine.NetworkCandidate{}, err
	}
	opts, err := it.evalOptions()
	if err != nil {
		return engine.NetworkCandidate{}, err
	}
	codes, err := ResolveSchemes(it.Schemes)
	if err != nil {
		return engine.NetworkCandidate{}, err
	}
	return engine.NetworkCandidate{Topology: cfg, Schemes: codes, Opts: opts}, nil
}

// topology converts the wire request into a noc.Config (Base is left zero,
// so the daemon's engine configuration is adopted).
func (r *NoCRequest) topology() (noc.Config, error) {
	kind, err := noc.ParseKind(r.Topology)
	if err != nil {
		return noc.Config{}, fmt.Errorf("%w: %v", apierr.ErrInvalidInput, err)
	}
	return noc.Config{Kind: kind, Tiles: r.Tiles, Columns: r.Columns, TilePitchCM: r.TilePitchCM}, nil
}

// evalOptions converts the wire request into noc evaluation options.
func (r *NoCRequest) evalOptions() (noc.EvalOptions, error) {
	obj, err := parseObjective(r.Objective)
	if err != nil {
		return noc.EvalOptions{}, err
	}
	opts := noc.EvalOptions{
		TargetBER:               r.TargetBER,
		Objective:               obj,
		Traffic:                 noc.Matrix(r.Traffic),
		InjectionRateBitsPerSec: r.RateBitsPerSec,
		MessageBits:             r.MessageBits,
	}
	if len(r.Traffic) == 0 {
		opts.Traffic = nil
	}
	if r.UseDAC {
		dac := manager.PaperDAC()
		opts.DAC = &dac
	}
	return opts, nil
}

// Evaluation is one solved (scheme, target BER) operating point on the
// wire: core.Evaluation with the scheme flattened to its registry name (an
// ecc.Code cannot round-trip JSON).
type Evaluation struct {
	Scheme           string              `json:"scheme"`
	TargetBER        float64             `json:"target_ber"`
	RawBER           float64             `json:"raw_ber"`
	SNR              float64             `json:"snr"`
	CT               float64             `json:"ct"`
	Op               onoc.OperatingPoint `json:"op"`
	LaserPowerW      float64             `json:"laser_power_w"`
	ModulatorPowerW  float64             `json:"modulator_power_w"`
	InterfacePowerW  float64             `json:"interface_power_w"`
	ChannelPowerW    float64             `json:"channel_power_w"`
	EnergyPerBitJ    float64             `json:"energy_per_bit_j"`
	Feasible         bool                `json:"feasible"`
	InfeasibleReason string              `json:"infeasible_reason,omitempty"`
}

// toWireEval flattens a solved evaluation for the wire.
func toWireEval(ev core.Evaluation) Evaluation {
	return Evaluation{
		Scheme:           ev.Code.Name(),
		TargetBER:        ev.TargetBER,
		RawBER:           ev.RawBER,
		SNR:              ev.SNR,
		CT:               ev.CT,
		Op:               ev.Op,
		LaserPowerW:      ev.LaserPowerW,
		ModulatorPowerW:  ev.ModulatorPowerW,
		InterfacePowerW:  ev.InterfacePowerW,
		ChannelPowerW:    ev.ChannelPowerW,
		EnergyPerBitJ:    ev.EnergyPerBitJ,
		Feasible:         ev.Feasible,
		InfeasibleReason: ev.InfeasibleReason,
	}
}

// Core rebuilds the in-process evaluation, resolving the scheme name
// against the extended registry.
func (w Evaluation) Core() (core.Evaluation, error) {
	code, ok := ecc.SchemeByName(w.Scheme)
	if !ok {
		return core.Evaluation{}, fmt.Errorf("%w: remote evaluation names unknown scheme %q", apierr.ErrInvalidInput, w.Scheme)
	}
	return core.Evaluation{
		Code:             code,
		TargetBER:        w.TargetBER,
		RawBER:           w.RawBER,
		SNR:              w.SNR,
		CT:               w.CT,
		Op:               w.Op,
		LaserPowerW:      w.LaserPowerW,
		ModulatorPowerW:  w.ModulatorPowerW,
		InterfacePowerW:  w.InterfacePowerW,
		ChannelPowerW:    w.ChannelPowerW,
		EnergyPerBitJ:    w.EnergyPerBitJ,
		Feasible:         w.Feasible,
		InfeasibleReason: w.InfeasibleReason,
	}, nil
}

// SweepResponse is the body of a batch sweep: evaluations in the engine's
// deterministic BER-major, then scheme order.
type SweepResponse struct {
	Evaluations []Evaluation `json:"evaluations"`
}

// StreamItem is one NDJSON line of /v1/sweep/stream: either an indexed
// evaluation or a terminal error.
type StreamItem struct {
	Index      int               `json:"index"`
	Evaluation *Evaluation       `json:"evaluation,omitempty"`
	Error      *apierr.ErrorBody `json:"error,omitempty"`
}

// DecideResponse is the body of /v1/decide: the manager's scheme choice
// and quantized laser programming.
type DecideResponse struct {
	Eval                 Evaluation `json:"eval"`
	DACCode              int        `json:"dac_code"`
	QuantizedOpticalW    float64    `json:"quantized_optical_w"`
	QuantizedLaserPowerW float64    `json:"quantized_laser_power_w"`
	QuantizationWasteW   float64    `json:"quantization_waste_w"`
}

// NoCLinkDecision is one link's chosen operating point on the wire.
type NoCLinkDecision struct {
	Link             int     `json:"link"`
	Scheme           string  `json:"scheme,omitempty"`
	CT               float64 `json:"ct,omitempty"`
	LaserPowerW      float64 `json:"laser_power_w"`
	DACCode          int     `json:"dac_code"`
	EnergyPerBitJ    float64 `json:"energy_per_bit_j"`
	Feasible         bool    `json:"feasible"`
	InfeasibleReason string  `json:"infeasible_reason,omitempty"`
}

// NoCLinkLoad is one link's traffic view on the wire.
type NoCLinkLoad struct {
	Link               int     `json:"link"`
	CapacityBitsPerSec float64 `json:"capacity_bits_per_sec"`
	OfferedBitsPerSec  float64 `json:"offered_bits_per_sec"`
	Utilization        float64 `json:"utilization"`
	QueueWaitSec       WFloat  `json:"queue_wait_sec"`
}

// NoCResult is one solved network operating point on the wire.
type NoCResult struct {
	Kind             string  `json:"kind"`
	Tiles            int     `json:"tiles"`
	Links            int     `json:"links"`
	TargetBER        float64 `json:"target_ber"`
	Feasible         bool    `json:"feasible"`
	InfeasibleReason string  `json:"infeasible_reason,omitempty"`

	SchemeUse map[string]int    `json:"scheme_use,omitempty"`
	Decisions []NoCLinkDecision `json:"decisions,omitempty"`
	Loads     []NoCLinkLoad     `json:"loads,omitempty"`

	// The rate figures ride WFloat like the latency percentiles: a
	// degenerate candidate evaluated by an old daemon (or a result relayed
	// through logs) can carry ±Inf, and the wire must not lose it.
	SaturationInjectionBitsPerSec WFloat `json:"saturation_injection_bits_per_sec"`
	InjectionRateBitsPerSec       WFloat `json:"injection_rate_bits_per_sec"`
	Saturated                     bool   `json:"saturated"`
	DeliveredBitsPerSec           WFloat `json:"delivered_bits_per_sec"`

	LaserPowerW         float64 `json:"laser_power_w"`
	ModulatorPowerW     float64 `json:"modulator_power_w"`
	InterfacePowerW     float64 `json:"interface_power_w"`
	NetworkPowerW       float64 `json:"network_power_w"`
	EnergyPerBitJ       float64 `json:"energy_per_bit_j"`
	ActiveEnergyPerBitJ float64 `json:"active_energy_per_bit_j"`

	MeanLatencySec WFloat `json:"mean_latency_sec"`
	P50LatencySec  WFloat `json:"p50_latency_sec"`
	P95LatencySec  WFloat `json:"p95_latency_sec"`
	P99LatencySec  WFloat `json:"p99_latency_sec"`
	MaxLatencySec  WFloat `json:"max_latency_sec"`
}

// toWireDecision flattens one link decision.
func toWireDecision(d noc.LinkDecision) NoCLinkDecision {
	w := NoCLinkDecision{
		Link:             d.Link,
		LaserPowerW:      d.LaserPowerW,
		DACCode:          d.DACCode,
		EnergyPerBitJ:    d.EnergyPerBitJ,
		Feasible:         d.Feasible,
		InfeasibleReason: d.InfeasibleReason,
	}
	if d.Eval.Code != nil {
		w.Scheme = d.Eval.Code.Name()
		w.CT = d.Eval.CT
	}
	return w
}

// coreDecision rebuilds an in-process link decision; infeasible links have
// no scheme and keep a zero Eval, matching noc.Decide.
func (w NoCLinkDecision) coreDecision() (noc.LinkDecision, error) {
	d := noc.LinkDecision{
		Link:             w.Link,
		LaserPowerW:      w.LaserPowerW,
		DACCode:          w.DACCode,
		EnergyPerBitJ:    w.EnergyPerBitJ,
		Feasible:         w.Feasible,
		InfeasibleReason: w.InfeasibleReason,
	}
	if w.Scheme != "" {
		code, ok := ecc.SchemeByName(w.Scheme)
		if !ok {
			return d, fmt.Errorf("%w: remote decision names unknown scheme %q", apierr.ErrInvalidInput, w.Scheme)
		}
		d.Eval.Code = code
		d.Eval.CT = w.CT
		d.Eval.Feasible = w.Feasible
	}
	return d, nil
}

// toWireNoC flattens a solved network result.
func toWireNoC(res noc.Result) NoCResult {
	w := NoCResult{
		Kind:             res.Kind.String(),
		Tiles:            res.Tiles,
		Links:            res.Links,
		TargetBER:        res.TargetBER,
		Feasible:         res.Feasible,
		InfeasibleReason: res.InfeasibleReason,
		SchemeUse:        res.SchemeUse,

		SaturationInjectionBitsPerSec: WFloat(res.SaturationInjectionBitsPerSec),
		InjectionRateBitsPerSec:       WFloat(res.InjectionRateBitsPerSec),
		Saturated:                     res.Saturated,
		DeliveredBitsPerSec:           WFloat(res.DeliveredBitsPerSec),

		LaserPowerW:         res.LaserPowerW,
		ModulatorPowerW:     res.ModulatorPowerW,
		InterfacePowerW:     res.InterfacePowerW,
		NetworkPowerW:       res.NetworkPowerW,
		EnergyPerBitJ:       res.EnergyPerBitJ,
		ActiveEnergyPerBitJ: res.ActiveEnergyPerBitJ,

		MeanLatencySec: WFloat(res.MeanLatencySec),
		P50LatencySec:  WFloat(res.P50LatencySec),
		P95LatencySec:  WFloat(res.P95LatencySec),
		P99LatencySec:  WFloat(res.P99LatencySec),
		MaxLatencySec:  WFloat(res.MaxLatencySec),
	}
	for _, d := range res.Decisions {
		w.Decisions = append(w.Decisions, toWireDecision(d))
	}
	for _, l := range res.Loads {
		w.Loads = append(w.Loads, NoCLinkLoad{
			Link:               l.Link,
			CapacityBitsPerSec: l.CapacityBitsPerSec,
			OfferedBitsPerSec:  l.OfferedBitsPerSec,
			Utilization:        l.Utilization,
			QueueWaitSec:       WFloat(l.QueueWaitSec),
		})
	}
	return w
}

// Core rebuilds an in-process noc.Result (scheme names resolved against the
// registry) so remote results render through the exact same table code as
// local ones.
func (w NoCResult) Core() (noc.Result, error) {
	kind, err := noc.ParseKind(w.Kind)
	if err != nil {
		return noc.Result{}, fmt.Errorf("%w: %v", apierr.ErrInvalidInput, err)
	}
	res := noc.Result{
		Kind:             kind,
		Tiles:            w.Tiles,
		Links:            w.Links,
		TargetBER:        w.TargetBER,
		Feasible:         w.Feasible,
		InfeasibleReason: w.InfeasibleReason,
		SchemeUse:        w.SchemeUse,

		SaturationInjectionBitsPerSec: float64(w.SaturationInjectionBitsPerSec),
		InjectionRateBitsPerSec:       float64(w.InjectionRateBitsPerSec),
		Saturated:                     w.Saturated,
		DeliveredBitsPerSec:           float64(w.DeliveredBitsPerSec),

		LaserPowerW:         w.LaserPowerW,
		ModulatorPowerW:     w.ModulatorPowerW,
		InterfacePowerW:     w.InterfacePowerW,
		NetworkPowerW:       w.NetworkPowerW,
		EnergyPerBitJ:       w.EnergyPerBitJ,
		ActiveEnergyPerBitJ: w.ActiveEnergyPerBitJ,

		MeanLatencySec: float64(w.MeanLatencySec),
		P50LatencySec:  float64(w.P50LatencySec),
		P95LatencySec:  float64(w.P95LatencySec),
		P99LatencySec:  float64(w.P99LatencySec),
		MaxLatencySec:  float64(w.MaxLatencySec),
	}
	for _, d := range w.Decisions {
		cd, err := d.coreDecision()
		if err != nil {
			return noc.Result{}, err
		}
		res.Decisions = append(res.Decisions, cd)
	}
	for _, l := range w.Loads {
		res.Loads = append(res.Loads, noc.LinkLoad{
			Link:               l.Link,
			CapacityBitsPerSec: l.CapacityBitsPerSec,
			OfferedBitsPerSec:  l.OfferedBitsPerSec,
			Utilization:        l.Utilization,
			QueueWaitSec:       float64(l.QueueWaitSec),
		})
	}
	return res, nil
}

// NoCStreamItem is one NDJSON line of /v1/noc/sweep and /v1/noc/batch:
// either a per-index result or an error. Index stamps the item's position
// in the full (unresumed) stream, so a client reconnecting with
// ?start_index=N can verify it is receiving exactly the suffix it asked
// for. An Error with Partial unset is terminal — the stream is over; with
// Partial set (batch continue_on_error mode) it is one candidate's failure
// record and the stream continues.
type NoCStreamItem struct {
	Index     int               `json:"index"`
	TargetBER float64           `json:"target_ber"`
	Result    *NoCResult        `json:"result,omitempty"`
	Error     *apierr.ErrorBody `json:"error,omitempty"`
	Partial   bool              `json:"partial,omitempty"`
}

// NoCSimResult is a network discrete-event simulation on the wire.
type NoCSimResult struct {
	Injected      int64 `json:"injected"`
	Messages      int64 `json:"messages"`
	Dropped       int64 `json:"dropped"`
	DeliveredBits int64 `json:"delivered_bits"`

	SimTimeSec           float64 `json:"sim_time_sec"`
	MeanLatencySec       float64 `json:"mean_latency_sec"`
	P50LatencySec        float64 `json:"p50_latency_sec"`
	P95LatencySec        float64 `json:"p95_latency_sec"`
	P99LatencySec        float64 `json:"p99_latency_sec"`
	MaxLatencySec        float64 `json:"max_latency_sec"`
	MeanQueueWaitSec     float64 `json:"mean_queue_wait_sec"`
	MeanHops             float64 `json:"mean_hops"`
	LaserEnergyJ         float64 `json:"laser_energy_j"`
	ModulatorEnergyJ     float64 `json:"modulator_energy_j"`
	InterfaceEnergyJ     float64 `json:"interface_energy_j"`
	TotalEnergyJ         float64 `json:"total_energy_j"`
	EnergyPerBitJ        float64 `json:"energy_per_bit_j"`
	ThroughputBitsPerSec float64 `json:"throughput_bits_per_sec"`
	MeanUtilization      float64 `json:"mean_utilization"`
	MaxUtilization       float64 `json:"max_utilization"`

	SchemeUse map[string]int        `json:"scheme_use,omitempty"`
	Decisions []NoCLinkDecision     `json:"decisions,omitempty"`
	PerLink   []netsim.NetLinkStats `json:"per_link,omitempty"`
}

// toWireSim flattens a network simulation.
func toWireSim(res netsim.NetResults) NoCSimResult {
	w := NoCSimResult{
		Injected:      res.Injected,
		Messages:      res.Messages,
		Dropped:       res.Dropped,
		DeliveredBits: res.DeliveredBits,

		SimTimeSec:           res.SimTimeSec,
		MeanLatencySec:       res.MeanLatencySec,
		P50LatencySec:        res.P50LatencySec,
		P95LatencySec:        res.P95LatencySec,
		P99LatencySec:        res.P99LatencySec,
		MaxLatencySec:        res.MaxLatencySec,
		MeanQueueWaitSec:     res.MeanQueueWaitSec,
		MeanHops:             res.MeanHops,
		LaserEnergyJ:         res.LaserEnergyJ,
		ModulatorEnergyJ:     res.ModulatorEnergyJ,
		InterfaceEnergyJ:     res.InterfaceEnergyJ,
		TotalEnergyJ:         res.TotalEnergyJ,
		EnergyPerBitJ:        res.EnergyPerBitJ,
		ThroughputBitsPerSec: res.ThroughputBitsPerSec,
		MeanUtilization:      res.MeanUtilization,
		MaxUtilization:       res.MaxUtilization,

		SchemeUse: res.SchemeUse,
		PerLink:   res.PerLink,
	}
	for _, d := range res.Decisions {
		w.Decisions = append(w.Decisions, toWireDecision(d))
	}
	return w
}

// Core rebuilds in-process simulation results for local rendering.
func (w NoCSimResult) Core() (netsim.NetResults, error) {
	res := netsim.NetResults{
		Injected:      w.Injected,
		Messages:      w.Messages,
		Dropped:       w.Dropped,
		DeliveredBits: w.DeliveredBits,

		SimTimeSec:           w.SimTimeSec,
		MeanLatencySec:       w.MeanLatencySec,
		P50LatencySec:        w.P50LatencySec,
		P95LatencySec:        w.P95LatencySec,
		P99LatencySec:        w.P99LatencySec,
		MaxLatencySec:        w.MaxLatencySec,
		MeanQueueWaitSec:     w.MeanQueueWaitSec,
		MeanHops:             w.MeanHops,
		LaserEnergyJ:         w.LaserEnergyJ,
		ModulatorEnergyJ:     w.ModulatorEnergyJ,
		InterfaceEnergyJ:     w.InterfaceEnergyJ,
		TotalEnergyJ:         w.TotalEnergyJ,
		EnergyPerBitJ:        w.EnergyPerBitJ,
		ThroughputBitsPerSec: w.ThroughputBitsPerSec,
		MeanUtilization:      w.MeanUtilization,
		MaxUtilization:       w.MaxUtilization,

		SchemeUse: w.SchemeUse,
		PerLink:   w.PerLink,
	}
	for _, d := range w.Decisions {
		cd, err := d.coreDecision()
		if err != nil {
			return netsim.NetResults{}, err
		}
		res.Decisions = append(res.Decisions, cd)
	}
	return res, nil
}

// ConfigResponse is the body of GET /v1/config: the daemon engine's link
// configuration (LinkConfig round-trips JSON losslessly — the SaveConfig
// contract), its cache fingerprint and the scheme roster.
type ConfigResponse struct {
	Fingerprint string          `json:"fingerprint"`
	Schemes     []string        `json:"schemes"`
	Workers     int             `json:"workers"`
	Config      core.LinkConfig `json:"config"`
}

// NoCTuneRequest is the body of POST /v1/noc/tune: one autotuner campaign
// over the joint NoC design space. Only TargetBER is required; every other
// field zero-defaults exactly like tune.Options (16 particles, 20
// generations, bus/ring/mesh kinds, the daemon's roster plus one
// single-scheme roster per code, DAC bits {0, 4, 6, 8}).
type NoCTuneRequest struct {
	TargetBER       float64 `json:"target_ber"`
	Objective       string  `json:"objective,omitempty"`
	Pattern         string  `json:"pattern,omitempty"` // uniform|hotspot|permutation|streaming
	HotspotNode     int     `json:"hotspot_node,omitempty"`
	HotspotFraction float64 `json:"hotspot_fraction,omitempty"`
	MessageBits     int     `json:"message_bits,omitempty"`

	Seed        int64 `json:"seed,omitempty"`
	Particles   int   `json:"particles,omitempty"`
	Generations int   `json:"generations,omitempty"`
	ArchiveCap  int   `json:"archive_cap,omitempty"`

	// The design-space choice lists. Kinds are topology names; Rosters are
	// scheme-name subsets resolved against the extended registry.
	Kinds       []string   `json:"kinds,omitempty"`
	Tiles       []int      `json:"tiles,omitempty"`
	Wavelengths []int      `json:"wavelengths,omitempty"`
	Rosters     [][]string `json:"rosters,omitempty"`
	DACBits     []int      `json:"dac_bits,omitempty"`
}

// options converts the wire campaign into tune options; list defaults stay
// nil so tune.Run applies its own.
func (r *NoCTuneRequest) options() (tune.Options, error) {
	obj, err := parseObjective(r.Objective)
	if err != nil {
		return tune.Options{}, err
	}
	pat := netsim.Uniform
	if r.Pattern != "" {
		if pat, err = netsim.ParsePattern(r.Pattern); err != nil {
			return tune.Options{}, fmt.Errorf("%w: %v", apierr.ErrInvalidInput, err)
		}
	}
	opts := tune.Options{
		Seed:            r.Seed,
		Particles:       r.Particles,
		Generations:     r.Generations,
		ArchiveCap:      r.ArchiveCap,
		TargetBER:       r.TargetBER,
		Objective:       obj,
		Pattern:         pat,
		HotspotNode:     r.HotspotNode,
		HotspotFraction: r.HotspotFraction,
		MessageBits:     r.MessageBits,
		Tiles:           r.Tiles,
		Wavelengths:     r.Wavelengths,
		DACBits:         r.DACBits,
	}
	for _, k := range r.Kinds {
		kind, err := noc.ParseKind(k)
		if err != nil {
			return tune.Options{}, fmt.Errorf("%w: %v", apierr.ErrInvalidInput, err)
		}
		opts.Kinds = append(opts.Kinds, kind)
	}
	for i, names := range r.Rosters {
		codes, err := ResolveSchemes(names)
		if err != nil {
			return tune.Options{}, err
		}
		if len(codes) == 0 {
			return tune.Options{}, fmt.Errorf("%w: roster choice %d is empty", apierr.ErrInvalidInput, i)
		}
		opts.Rosters = append(opts.Rosters, codes)
	}
	return opts, nil
}

// NoCTunePoint is one archived design point on the wire: the decoded spec
// (scheme roster by name), the encoded particle position, and the three
// objectives. The objectives ride WFloat like the NoCResult figures.
type NoCTunePoint struct {
	Topology    string    `json:"topology"`
	Tiles       int       `json:"tiles"`
	Columns     int       `json:"columns"`
	Wavelengths int       `json:"wavelengths,omitempty"` // 0 = the daemon's grid
	Roster      []string  `json:"roster"`
	DACBits     int       `json:"dac_bits,omitempty"` // 0 = exact analytic settings
	Position    []float64 `json:"position"`

	EnergyPerBitJ        WFloat `json:"energy_per_bit_j"`
	P99LatencySec        WFloat `json:"p99_latency_sec"`
	SaturationBitsPerSec WFloat `json:"saturation_bits_per_sec"`
}

// toWireTunePoint flattens one archived point.
func toWireTunePoint(p tune.Point) NoCTunePoint {
	return NoCTunePoint{
		Topology:             p.Spec.Kind.String(),
		Tiles:                p.Spec.Tiles,
		Columns:              p.Spec.Columns,
		Wavelengths:          p.Spec.Wavelengths,
		Roster:               p.Spec.Roster,
		DACBits:              p.Spec.DACBits,
		Position:             p.Position,
		EnergyPerBitJ:        WFloat(p.EnergyPerBitJ),
		P99LatencySec:        WFloat(p.P99LatencySec),
		SaturationBitsPerSec: WFloat(p.SaturationBitsPerSec),
	}
}

// toWireTuneFront flattens a whole front.
func toWireTuneFront(front []tune.Point) []NoCTunePoint {
	out := make([]NoCTunePoint, len(front))
	for i, p := range front {
		out[i] = toWireTunePoint(p)
	}
	return out
}

// Core rebuilds the in-process point (topology name parsed back to its
// kind), so remote fronts render through the same code as local ones.
func (w NoCTunePoint) Core() (tune.Point, error) {
	kind, err := noc.ParseKind(w.Topology)
	if err != nil {
		return tune.Point{}, fmt.Errorf("%w: %v", apierr.ErrInvalidInput, err)
	}
	return tune.Point{
		Spec: tune.CandidateSpec{
			Kind:        kind,
			Tiles:       w.Tiles,
			Columns:     w.Columns,
			Wavelengths: w.Wavelengths,
			Roster:      w.Roster,
			DACBits:     w.DACBits,
		},
		Position:             w.Position,
		EnergyPerBitJ:        float64(w.EnergyPerBitJ),
		P99LatencySec:        float64(w.P99LatencySec),
		SaturationBitsPerSec: float64(w.SaturationBitsPerSec),
	}, nil
}

// coreTuneFront rebuilds a whole front.
func coreTuneFront(front []NoCTunePoint) ([]tune.Point, error) {
	out := make([]tune.Point, len(front))
	for i, w := range front {
		p, err := w.Core()
		if err != nil {
			return nil, err
		}
		out[i] = p
	}
	return out, nil
}

// NoCTuneSummary is the terminal line of a finished campaign: the final
// front plus evaluation accounting, mirroring tune.Result.
type NoCTuneSummary struct {
	Generations int            `json:"generations"`
	Particles   int            `json:"particles"`
	Evaluated   int            `json:"evaluated"`
	Infeasible  int            `json:"infeasible"`
	Front       []NoCTunePoint `json:"front"`
}

// NoCTuneItem is one NDJSON line of POST /v1/noc/tune. Index counts
// generations: items 0 .. generations−1 carry that generation's archive
// front, and the final item at Index = generations carries the Summary.
// An Error item is always terminal — infeasible candidates are accounted
// inside the campaign, never streamed as failures.
type NoCTuneItem struct {
	Index   int               `json:"index"`
	Front   []NoCTunePoint    `json:"front,omitempty"`
	Summary *NoCTuneSummary   `json:"summary,omitempty"`
	Error   *apierr.ErrorBody `json:"error,omitempty"`
}

// TuneSummary flattens a finished campaign — the daemon's terminal stream
// line and the onoctune -json document share this exact shape, so a remote
// campaign's JSON is byte-identical to a local one's.
func TuneSummary(res *tune.Result) NoCTuneSummary {
	return NoCTuneSummary{
		Generations: res.Generations,
		Particles:   res.Particles,
		Evaluated:   res.Evaluated,
		Infeasible:  res.Infeasible,
		Front:       toWireTuneFront(res.Front),
	}
}
