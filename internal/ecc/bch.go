package ecc

import (
	"fmt"

	"photonoc/internal/bits"
	"photonoc/internal/gf2"
)

// BCH is a primitive binary BCH code of length n = 2^m − 1 with designed
// correction capability t, decoded algebraically (syndromes →
// Berlekamp-Massey → Chien search). The codeword layout is
// [parity (n−k bits) | data (k bits)], i.e. c(x) = x^{n−k}·d(x) + rem(x).
type BCH struct {
	name  string
	field *gf2.Field
	n, k  int
	t     int
	gen   gf2.BinPoly
}

// NewBCH constructs the (2^m−1, k) BCH code correcting t errors, where k is
// determined by the degree of the generator polynomial (the LCM of the
// minimal polynomials of α, α², …, α^{2t}).
func NewBCH(m, t int) (*BCH, error) {
	if t < 1 {
		return nil, fmt.Errorf("ecc: NewBCH: t must be >= 1, got %d", t)
	}
	field, err := gf2.NewField(m)
	if err != nil {
		return nil, err
	}
	n := field.N()
	if 2*t >= n {
		return nil, fmt.Errorf("ecc: NewBCH: t=%d too large for n=%d", t, n)
	}
	// Generator = product of the distinct minimal polynomials of α^1..α^2t.
	gen := gf2.BinPoly(1)
	seen := make(map[gf2.BinPoly]bool)
	for i := 1; i <= 2*t; i++ {
		mp, err := field.MinimalPoly(field.Alpha(i))
		if err != nil {
			return nil, err
		}
		if seen[mp] {
			continue
		}
		seen[mp] = true
		gen, err = gf2.MulBin(gen, mp)
		if err != nil {
			return nil, fmt.Errorf("ecc: NewBCH(m=%d,t=%d): %w", m, t, err)
		}
	}
	k := n - gen.Degree()
	if k <= 0 {
		return nil, fmt.Errorf("ecc: NewBCH(m=%d,t=%d): no data bits left (k=%d)", m, t, k)
	}
	return &BCH{
		name:  fmt.Sprintf("BCH(%d,%d,t=%d)", n, k, t),
		field: field,
		n:     n,
		k:     k,
		t:     t,
		gen:   gen,
	}, nil
}

// MustBCH157 returns the double-error-correcting BCH(15,7) code.
func MustBCH157() *BCH {
	c, err := NewBCH(4, 2)
	if err != nil {
		panic(err) // fixed parameters: cannot fail
	}
	return c
}

// MustBCH3121 returns the double-error-correcting BCH(31,21) code.
func MustBCH3121() *BCH {
	c, err := NewBCH(5, 2)
	if err != nil {
		panic(err)
	}
	return c
}

// Name implements Code.
func (c *BCH) Name() string { return c.name }

// N implements Code.
func (c *BCH) N() int { return c.n }

// K implements Code.
func (c *BCH) K() int { return c.k }

// T implements Code.
func (c *BCH) T() int { return c.t }

// Generator returns the generator polynomial.
func (c *BCH) Generator() gf2.BinPoly { return c.gen }

// Encode implements Code: systematic polynomial encoding. Data bit j becomes
// the coefficient of x^{n−k+j}; the low n−k coefficients hold the remainder.
func (c *BCH) Encode(data bits.Vector) (bits.Vector, error) {
	out := bits.New(c.n)
	if err := c.EncodeInto(out, data); err != nil {
		return bits.Vector{}, err
	}
	return out, nil
}

// EncodeInto implements InplaceCode without allocating. dst is fully
// overwritten (parity remainder in the low n−k bits, data above).
func (c *BCH) EncodeInto(dst, data bits.Vector) error {
	if err := checkDataLen(c, data); err != nil {
		return err
	}
	if err := checkEncodeDst(c, dst); err != nil {
		return err
	}
	deg := c.n - c.k
	dst.Zero()
	data.CopyInto(dst, deg)
	rem := c.polyMod(dst)
	for i := 0; i < deg; i++ {
		dst.Set(i, int(rem>>uint(i))&1)
	}
	return nil
}

// polyMod returns v(x) mod gen(x) as packed bits (degree < n−k ≤ 63).
func (c *BCH) polyMod(v bits.Vector) uint64 {
	deg := c.gen.Degree()
	var rem uint64
	for i := v.Len() - 1; i >= 0; i-- {
		fb := rem >> uint(deg-1) & 1
		rem = rem<<1 | uint64(v.Bit(i))
		if fb == 1 {
			rem ^= uint64(c.gen)
		}
	}
	return rem & (1<<uint(deg) - 1)
}

// Syndromes returns S_1..S_2t, the received polynomial evaluated at
// α^1..α^{2t}.
func (c *BCH) Syndromes(word bits.Vector) []uint16 {
	synd := make([]uint16, 2*c.t)
	c.syndromesInto(synd, word)
	return synd
}

// SyndromesInto implements the syndrome seam without allocating: dst must
// hold 2t entries and receives S_1..S_2t.
func (c *BCH) SyndromesInto(dst []uint16, word bits.Vector) error {
	if len(dst) != 2*c.t {
		return fmt.Errorf("ecc: %s: SyndromesInto needs %d entries, got %d", c.name, 2*c.t, len(dst))
	}
	if err := checkWordLen(c, word); err != nil {
		return err
	}
	c.syndromesInto(dst, word)
	return nil
}

// syndromesInto accumulates each set bit's α^{j·pos} contribution into dst,
// visiting the word once instead of materializing the ones-position list.
func (c *BCH) syndromesInto(dst []uint16, word bits.Vector) {
	for j := range dst {
		dst[j] = 0
	}
	for pos := 0; pos < c.n; pos++ {
		if word.Bit(pos) == 0 {
			continue
		}
		for j := 1; j <= len(dst); j++ {
			dst[j-1] ^= c.field.Alpha(j * pos)
		}
	}
}

// Decode implements Code using algebraic decoding. Error patterns of weight
// greater than t are flagged Detected whenever the locator polynomial fails
// to factor over the field (miscorrection, as for any bounded-distance
// decoder, remains possible and is exercised by the Monte-Carlo tests).
func (c *BCH) Decode(word bits.Vector) (bits.Vector, DecodeInfo, error) {
	out := bits.New(c.k)
	info, err := c.DecodeInto(out, word)
	if err != nil {
		return bits.Vector{}, DecodeInfo{}, err
	}
	return out, info, nil
}

// DecodeInto implements InplaceCode with Decode's exact semantics. The
// received word is never cloned: the miscorrection guard re-evaluates the
// syndromes with the candidate flips folded in algebraically
// (S_j(word ⊕ e) = S_j(word) ⊕ Σ α^{j·p}), and only data-region flips are
// applied to dst. The Berlekamp-Massey and Chien stages retain their small
// internal allocations.
func (c *BCH) DecodeInto(dst, word bits.Vector) (DecodeInfo, error) {
	if err := checkWordLen(c, word); err != nil {
		return DecodeInfo{}, err
	}
	if err := checkDecodeDst(c, dst); err != nil {
		return DecodeInfo{}, err
	}
	deg := c.n - c.k
	var synBuf [16]uint16
	var synd []uint16
	if 2*c.t <= len(synBuf) {
		synd = synBuf[:2*c.t]
	} else {
		synd = make([]uint16, 2*c.t)
	}
	c.syndromesInto(synd, word)
	word.SliceInto(dst, deg)
	allZero := true
	for _, s := range synd {
		if s != 0 {
			allZero = false
			break
		}
	}
	if allZero {
		return DecodeInfo{}, nil
	}
	lambda := c.field.BerlekampMassey(synd)
	if gf2.PolyDegree(lambda) > c.t {
		return DecodeInfo{Detected: true}, nil
	}
	positions, ok := c.field.ChienSearch(lambda, c.n)
	if !ok || len(positions) == 0 {
		return DecodeInfo{Detected: true}, nil
	}
	// Guard against miscorrection: the patched word must be a codeword.
	for j := 1; j <= len(synd); j++ {
		s := synd[j-1]
		for _, p := range positions {
			s ^= c.field.Alpha(j * p)
		}
		if s != 0 {
			return DecodeInfo{Detected: true}, nil
		}
	}
	for _, p := range positions {
		if p >= deg {
			dst.Flip(p - deg)
		}
	}
	return DecodeInfo{Corrected: len(positions)}, nil
}
