package ecc

import (
	"fmt"

	"photonoc/internal/bits"
	"photonoc/internal/gf2"
)

// BCH is a primitive binary BCH code of length n = 2^m − 1 with designed
// correction capability t, decoded algebraically (syndromes →
// Berlekamp-Massey → Chien search). The codeword layout is
// [parity (n−k bits) | data (k bits)], i.e. c(x) = x^{n−k}·d(x) + rem(x).
type BCH struct {
	name  string
	field *gf2.Field
	n, k  int
	t     int
	gen   gf2.BinPoly
}

// NewBCH constructs the (2^m−1, k) BCH code correcting t errors, where k is
// determined by the degree of the generator polynomial (the LCM of the
// minimal polynomials of α, α², …, α^{2t}).
func NewBCH(m, t int) (*BCH, error) {
	if t < 1 {
		return nil, fmt.Errorf("ecc: NewBCH: t must be >= 1, got %d", t)
	}
	field, err := gf2.NewField(m)
	if err != nil {
		return nil, err
	}
	n := field.N()
	if 2*t >= n {
		return nil, fmt.Errorf("ecc: NewBCH: t=%d too large for n=%d", t, n)
	}
	// Generator = product of the distinct minimal polynomials of α^1..α^2t.
	gen := gf2.BinPoly(1)
	seen := make(map[gf2.BinPoly]bool)
	for i := 1; i <= 2*t; i++ {
		mp, err := field.MinimalPoly(field.Alpha(i))
		if err != nil {
			return nil, err
		}
		if seen[mp] {
			continue
		}
		seen[mp] = true
		gen, err = gf2.MulBin(gen, mp)
		if err != nil {
			return nil, fmt.Errorf("ecc: NewBCH(m=%d,t=%d): %w", m, t, err)
		}
	}
	k := n - gen.Degree()
	if k <= 0 {
		return nil, fmt.Errorf("ecc: NewBCH(m=%d,t=%d): no data bits left (k=%d)", m, t, k)
	}
	return &BCH{
		name:  fmt.Sprintf("BCH(%d,%d,t=%d)", n, k, t),
		field: field,
		n:     n,
		k:     k,
		t:     t,
		gen:   gen,
	}, nil
}

// MustBCH157 returns the double-error-correcting BCH(15,7) code.
func MustBCH157() *BCH {
	c, err := NewBCH(4, 2)
	if err != nil {
		panic(err) // fixed parameters: cannot fail
	}
	return c
}

// MustBCH3121 returns the double-error-correcting BCH(31,21) code.
func MustBCH3121() *BCH {
	c, err := NewBCH(5, 2)
	if err != nil {
		panic(err)
	}
	return c
}

// Name implements Code.
func (c *BCH) Name() string { return c.name }

// N implements Code.
func (c *BCH) N() int { return c.n }

// K implements Code.
func (c *BCH) K() int { return c.k }

// T implements Code.
func (c *BCH) T() int { return c.t }

// Generator returns the generator polynomial.
func (c *BCH) Generator() gf2.BinPoly { return c.gen }

// Encode implements Code: systematic polynomial encoding. Data bit j becomes
// the coefficient of x^{n−k+j}; the low n−k coefficients hold the remainder.
func (c *BCH) Encode(data bits.Vector) (bits.Vector, error) {
	if err := checkDataLen(c, data); err != nil {
		return bits.Vector{}, err
	}
	deg := c.n - c.k
	out := bits.New(c.n)
	data.CopyInto(out, deg)
	rem := c.polyMod(out)
	for i := 0; i < deg; i++ {
		out.Set(i, int(rem>>uint(i))&1)
	}
	return out, nil
}

// polyMod returns v(x) mod gen(x) as packed bits (degree < n−k ≤ 63).
func (c *BCH) polyMod(v bits.Vector) uint64 {
	deg := c.gen.Degree()
	var rem uint64
	for i := v.Len() - 1; i >= 0; i-- {
		fb := rem >> uint(deg-1) & 1
		rem = rem<<1 | uint64(v.Bit(i))
		if fb == 1 {
			rem ^= uint64(c.gen)
		}
	}
	return rem & (1<<uint(deg) - 1)
}

// Syndromes returns S_1..S_2t, the received polynomial evaluated at
// α^1..α^{2t}.
func (c *BCH) Syndromes(word bits.Vector) []uint16 {
	synd := make([]uint16, 2*c.t)
	ones := word.OnesPositions()
	for j := 1; j <= 2*c.t; j++ {
		var s uint16
		for _, pos := range ones {
			s ^= c.field.Alpha(j * pos)
		}
		synd[j-1] = s
	}
	return synd
}

// Decode implements Code using algebraic decoding. Error patterns of weight
// greater than t are flagged Detected whenever the locator polynomial fails
// to factor over the field (miscorrection, as for any bounded-distance
// decoder, remains possible and is exercised by the Monte-Carlo tests).
func (c *BCH) Decode(word bits.Vector) (bits.Vector, DecodeInfo, error) {
	if err := checkWordLen(c, word); err != nil {
		return bits.Vector{}, DecodeInfo{}, err
	}
	deg := c.n - c.k
	synd := c.Syndromes(word)
	allZero := true
	for _, s := range synd {
		if s != 0 {
			allZero = false
			break
		}
	}
	if allZero {
		return word.Slice(deg, c.n), DecodeInfo{}, nil
	}
	lambda := c.field.BerlekampMassey(synd)
	if gf2.PolyDegree(lambda) > c.t {
		return word.Slice(deg, c.n), DecodeInfo{Detected: true}, nil
	}
	positions, ok := c.field.ChienSearch(lambda, c.n)
	if !ok || len(positions) == 0 {
		return word.Slice(deg, c.n), DecodeInfo{Detected: true}, nil
	}
	fixed := word.Clone()
	for _, p := range positions {
		fixed.Flip(p)
	}
	// Guard against miscorrection: the patched word must be a codeword.
	for _, s := range c.Syndromes(fixed) {
		if s != 0 {
			return word.Slice(deg, c.n), DecodeInfo{Detected: true}, nil
		}
	}
	return fixed.Slice(deg, c.n), DecodeInfo{Corrected: len(positions)}, nil
}
