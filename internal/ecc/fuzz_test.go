package ecc

import (
	"testing"

	"photonoc/internal/bits"
)

// FuzzHamming7164Decode feeds arbitrary 71-bit words into the decoder: it
// must never panic and must always return either a clean pass-through, a
// correction, or a detection — and re-encoding a *successfully corrected*
// word must reproduce a valid codeword.
func FuzzHamming7164Decode(f *testing.F) {
	code := MustHamming7164()
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Add([]byte{0xA5, 0x5A, 0x0F, 0xF0, 0x33, 0xCC, 0x55, 0xAA, 0x01})
	f.Fuzz(func(t *testing.T, raw []byte) {
		word := bits.New(code.N())
		for i := 0; i < code.N() && i/8 < len(raw); i++ {
			word.Set(i, int(raw[i/8]>>(uint(i)%8))&1)
		}
		data, info, err := code.Decode(word)
		if err != nil {
			t.Fatalf("decode error on valid-size input: %v", err)
		}
		if data.Len() != code.K() {
			t.Fatalf("decoded %d bits", data.Len())
		}
		if info.Detected {
			return // uncorrectable: nothing more to check
		}
		// The corrected word must be a codeword: re-encode and compare
		// the parity section.
		re, err := code.Encode(data)
		if err != nil {
			t.Fatal(err)
		}
		syn, err := code.Syndrome(re)
		if err != nil {
			t.Fatal(err)
		}
		if syn != 0 {
			t.Fatal("re-encoded word has nonzero syndrome")
		}
	})
}

// FuzzBCH157Decode exercises the algebraic decoder (syndromes, BM, Chien)
// with arbitrary words: no panics, and any claimed correction must land on
// a true codeword.
func FuzzBCH157Decode(f *testing.F) {
	code := MustBCH157()
	f.Add(uint16(0))
	f.Add(uint16(0x7FFF))
	f.Add(uint16(0x1234))
	f.Fuzz(func(t *testing.T, raw uint16) {
		word := bits.FromUint(uint64(raw)&0x7FFF, 15)
		data, info, err := code.Decode(word)
		if err != nil {
			t.Fatalf("decode error: %v", err)
		}
		if info.Detected {
			return
		}
		re, err := code.Encode(data)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range code.Syndromes(re) {
			if s != 0 {
				t.Fatal("re-encoded BCH word not a codeword")
			}
		}
	})
}
