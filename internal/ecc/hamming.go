package ecc

import (
	"fmt"
	"math/bits"

	"photonoc/internal/gf2"
)

// NewHamming constructs the perfect binary Hamming code with m parity bits:
// n = 2^m − 1, k = n − m, minimum distance 3 (t = 1). m must be in [2, 15].
func NewHamming(m int) (*LinearCode, error) {
	p, k, err := hammingParity(m, 0)
	if err != nil {
		return nil, err
	}
	name := fmt.Sprintf("H(%d,%d)", k+m, k)
	return NewLinear(name, p, 1)
}

// NewShortenedHamming constructs a Hamming code shortened by s data bits:
// (2^m−1−s, 2^m−1−m−s). Shortening preserves the minimum distance, so the
// code still corrects one error; some syndromes become non-code patterns and
// decode as detected-uncorrectable.
func NewShortenedHamming(m, s int) (*LinearCode, error) {
	p, k, err := hammingParity(m, s)
	if err != nil {
		return nil, err
	}
	name := fmt.Sprintf("H(%d,%d)", k+m, k)
	return NewLinear(name, p, 1)
}

// hammingParity builds the parity submatrix P for a (possibly shortened)
// Hamming code: the rows are the m-bit column patterns of H that are not
// unit vectors, in increasing numeric order, with the last s rows dropped.
func hammingParity(m, s int) (*gf2.Matrix, int, error) {
	if m < 2 || m > 15 {
		return nil, 0, fmt.Errorf("ecc: Hamming parameter m=%d out of range [2,15]", m)
	}
	kFull := (1 << m) - 1 - m
	if s < 0 || s >= kFull {
		return nil, 0, fmt.Errorf("ecc: shortening by %d out of range [0,%d)", s, kFull)
	}
	k := kFull - s
	p := gf2.NewMatrix(k, m)
	row := 0
	for v := 3; row < k && v < 1<<m; v++ {
		if bits.OnesCount(uint(v)) < 2 {
			continue // powers of two are the identity columns of H
		}
		for j := 0; j < m; j++ {
			if v>>uint(j)&1 == 1 {
				p.Set(row, j, 1)
			}
		}
		row++
	}
	if row != k {
		return nil, 0, fmt.Errorf("ecc: internal: built %d of %d Hamming rows", row, k)
	}
	return p, k, nil
}

// MustHamming74 returns the paper's H(7,4) code (m = 3).
func MustHamming74() *LinearCode {
	c, err := NewHamming(3)
	if err != nil {
		panic(err) // fixed parameters: cannot fail
	}
	return c
}

// MustHamming7164 returns the paper's H(71,64) code: the m = 7 Hamming code
// H(127,120) shortened by 56 data bits.
func MustHamming7164() *LinearCode {
	c, err := NewShortenedHamming(7, 56)
	if err != nil {
		panic(err)
	}
	return c
}
