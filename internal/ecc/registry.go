package ecc

// PaperSchemes returns the three communication schemes the paper evaluates,
// in the order of Figure 5/6: uncoded (64-bit), H(71,64) and H(7,4).
func PaperSchemes() []Code {
	return []Code{
		MustUncoded64(),
		MustHamming7164(),
		MustHamming74(),
	}
}

// ExtendedSchemes returns the paper's schemes plus the additional coding
// techniques the paper leaves open ("other coding techniques can be used"):
// SECDED(72,64), double-error-correcting BCH codes, triple repetition and a
// parity check. These populate the ablation benches on the trade-off plane.
func ExtendedSchemes() []Code {
	mustRep := func(k, r int) Code {
		c, err := NewRepetition(k, r)
		if err != nil {
			panic(err) // fixed parameters: cannot fail
		}
		return c
	}
	mustParity := func(k int) Code {
		c, err := NewParity(k)
		if err != nil {
			panic(err)
		}
		return c
	}
	return append(PaperSchemes(),
		MustSECDED7264(),
		MustBCH157(),
		MustBCH3121(),
		mustRep(16, 3),
		mustParity(64),
	)
}

// SchemeByName finds a code by display name among the extended schemes;
// the boolean reports whether it was found.
func SchemeByName(name string) (Code, bool) {
	for _, c := range ExtendedSchemes() {
		if c.Name() == name {
			return c, true
		}
	}
	return nil, false
}
