package ecc

// FrameErrorRate returns the probability that a whole received codeword of
// code c cannot be decoded to the transmitted one at raw bit error
// probability p: the chance of more than t errors in n bits. For uncoded
// transmission this is 1 − (1−p)^n (any flip ruins the word).
//
// Deprecated: callers evaluating the same code repeatedly should hold the
// memoized plan from PlanFor(c) and call FERPlan.FrameErrorRate, which skips
// the per-call plan lookup. This wrapper remains fully supported and returns
// bit-identical values.
func FrameErrorRate(c Code, p float64) float64 {
	return PlanFor(c).FrameErrorRate(p)
}

// RequiredRawBERForFER inverts FrameErrorRate: the raw channel bit error
// probability at which code c's frame error rate equals target.
//
// Deprecated: use PlanFor(c).RequiredRawBERForFER, which reuses the code's
// compiled plan across calls. This wrapper remains fully supported; the
// Newton-based planned inversion agrees with the historical bisection to
// better than 1e-12 relative.
func RequiredRawBERForFER(c Code, target float64) (float64, error) {
	return PlanFor(c).RequiredRawBERForFER(target)
}

// ExpectedWordsBetweenFailures returns the mean number of codewords between
// decoder failures at raw bit error probability p — the MTBF-style metric a
// system architect reads off a link budget.
//
// Deprecated: use PlanFor(c).ExpectedWordsBetweenFailures when querying the
// same code repeatedly. This wrapper remains fully supported.
func ExpectedWordsBetweenFailures(c Code, p float64) float64 {
	return PlanFor(c).ExpectedWordsBetweenFailures(p)
}
