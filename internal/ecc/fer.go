package ecc

import (
	"fmt"
	"math"

	"photonoc/internal/mathx"
)

// FrameErrorRate returns the probability that a whole received codeword of
// code c cannot be decoded to the transmitted one at raw bit error
// probability p: the chance of more than t errors in n bits. For uncoded
// transmission this is 1 − (1−p)^n (any flip ruins the word).
func FrameErrorRate(c Code, p float64) float64 {
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return 1
	}
	n, t := c.N(), c.T()
	// P(X > t) for X ~ Binomial(n, p), computed from the small side.
	var ok float64
	for i := 0; i <= t; i++ {
		ok += binomialTerm(n, i, p)
	}
	return math.Min(math.Max(1-ok, 0), 1)
}

// RequiredRawBERForFER inverts FrameErrorRate: the raw channel bit error
// probability at which code c's frame error rate equals target.
func RequiredRawBERForFER(c Code, target float64) (float64, error) {
	if !(target > 0 && target < 1) {
		return 0, fmt.Errorf("ecc: target FER %g outside (0, 1)", target)
	}
	f := func(lnP float64) float64 {
		fer := FrameErrorRate(c, math.Exp(lnP))
		if fer <= 0 {
			return math.Inf(-1)
		}
		return math.Log(fer)
	}
	lnP, err := mathx.SolveMonotone(f, math.Log(target), math.Log(1e-18), math.Log(0.4999), 1e-12)
	if err != nil {
		return 0, fmt.Errorf("ecc: %s: inverting FER %g: %w", c.Name(), target, err)
	}
	return math.Exp(lnP), nil
}

// ExpectedWordsBetweenFailures returns the mean number of codewords between
// decoder failures at raw bit error probability p — the MTBF-style metric a
// system architect reads off a link budget.
func ExpectedWordsBetweenFailures(c Code, p float64) float64 {
	fer := FrameErrorRate(c, p)
	if fer <= 0 {
		return math.Inf(1)
	}
	return 1 / fer
}
