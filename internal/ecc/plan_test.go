package ecc

import (
	"math"
	"testing"

	"photonoc/internal/mathx"
)

// The reference implementations below reproduce the pre-plan per-call
// algorithms verbatim (per-term log-gamma evaluation, derivative-free
// bisection) so the property tests compare the planned fast path against an
// independent oracle rather than against itself.

func referenceFrameErrorRate(c Code, p float64) float64 {
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return 1
	}
	n, t := c.N(), c.T()
	var ok float64
	for i := 0; i <= t; i++ {
		ok += binomialTerm(n, i, p)
	}
	return math.Min(math.Max(1-ok, 0), 1)
}

func referencePostDecodeBER(c Code, p float64) float64 {
	if m, ok := c.(BERModeler); ok {
		return m.PostDecodeBER(p)
	}
	switch {
	case c.T() == 0:
		return p
	case c.T() == 1:
		return PaperHammingBER(c.N(), p)
	default:
		return UnionBoundBER(c.N(), c.T(), p)
	}
}

func referenceRequiredRawBER(c Code, target, tol float64) (float64, error) {
	f := func(lnP float64) float64 {
		post := referencePostDecodeBER(c, math.Exp(lnP))
		if post <= 0 {
			return math.Inf(-1)
		}
		return math.Log(post)
	}
	lnP, err := mathx.SolveMonotone(f, math.Log(target), math.Log(1e-18), math.Log(0.4999), tol)
	if err != nil {
		return 0, err
	}
	return math.Exp(lnP), nil
}

func referenceRequiredRawBERForFER(c Code, target, tol float64) (float64, error) {
	f := func(lnP float64) float64 {
		fer := referenceFrameErrorRate(c, math.Exp(lnP))
		if fer <= 0 {
			return math.Inf(-1)
		}
		return math.Log(fer)
	}
	lnP, err := mathx.SolveMonotone(f, math.Log(target), math.Log(1e-18), math.Log(0.4999), tol)
	if err != nil {
		return 0, err
	}
	return math.Exp(lnP), nil
}

// planProbeGrid is the satellite-mandated probe set: p ∈ logspace(1e-15, 0.4).
func planProbeGrid() []float64 { return mathx.Logspace(1e-15, 0.4, 61) }

func relDiff(a, b float64) float64 {
	if a == b {
		return 0
	}
	den := math.Max(math.Abs(a), math.Abs(b))
	if den == 0 {
		return 0
	}
	return math.Abs(a-b) / den
}

func TestPlanFrameErrorRateMatchesReference(t *testing.T) {
	for _, code := range ExtendedSchemes() {
		plan := PlanFor(code)
		for _, p := range planProbeGrid() {
			got, want := plan.FrameErrorRate(p), referenceFrameErrorRate(code, p)
			if got != want {
				t.Errorf("%s: FrameErrorRate(%g) = %g, reference %g (planned head sum must be bit-identical)",
					code.Name(), p, got, want)
			}
		}
	}
}

func TestPlanPostDecodeBERMatchesReference(t *testing.T) {
	const tol = 1e-12
	for _, code := range ExtendedSchemes() {
		plan := PlanFor(code)
		for _, p := range planProbeGrid() {
			got, want := plan.PostDecodeBER(p), referencePostDecodeBER(code, p)
			if d := relDiff(got, want); d > tol {
				t.Errorf("%s: PostDecodeBER(%g) = %g, reference %g (rel diff %.3g > %.0g)",
					code.Name(), p, got, want, d, tol)
			}
		}
	}
}

func TestPlanRequiredRawBERMatchesReference(t *testing.T) {
	const tol = 1e-12
	targets := mathx.Logspace(1e-15, 0.4, 16)
	for _, code := range ExtendedSchemes() {
		plan := PlanFor(code)
		for _, target := range targets {
			got, errGot := plan.RequiredRawBER(target)
			want, errWant := referenceRequiredRawBER(code, target, 1e-13)
			if (errGot == nil) != (errWant == nil) {
				t.Fatalf("%s @ %g: planned err %v, reference err %v", code.Name(), target, errGot, errWant)
			}
			if errGot != nil {
				continue
			}
			if d := relDiff(got, want); d > tol {
				t.Errorf("%s: RequiredRawBER(%g) = %.17g, reference %.17g (rel diff %.3g > %.0g)",
					code.Name(), target, got, want, d, tol)
			}
		}
	}
}

func TestPlanRequiredRawBERForFERMatchesReference(t *testing.T) {
	// Tolerance note: the legacy formulation computes FER = 1 − Σ_head,
	// which carries ≈2e-16 *absolute* roundoff — at a target FER of 1e-12
	// the quantity being inverted is only defined to ≈2e-4 relative, and
	// the legacy bisection lands at an arbitrary point inside that noise
	// band. The planned inversion solves the well-conditioned direct tail,
	// so the two agree to 1e-12 wherever the legacy function itself is that
	// precise, and to the legacy formulation's intrinsic roundoff
	// (≈5e-16/target) at deeper targets. Asserting tighter there would be
	// asserting on roundoff noise.
	targets := []float64{1e-12, 1e-9, 1e-6, 1e-3, 1e-1, 0.5, 0.9}
	for _, code := range ExtendedSchemes() {
		plan := PlanFor(code)
		for _, target := range targets {
			got, errGot := plan.RequiredRawBERForFER(target)
			want, errWant := referenceRequiredRawBERForFER(code, target, 1e-13)
			if (errGot == nil) != (errWant == nil) {
				t.Fatalf("%s @ %g: planned err %v, reference err %v", code.Name(), target, errGot, errWant)
			}
			if errGot != nil {
				continue
			}
			tol := math.Max(1e-12, 5e-16/target)
			if d := relDiff(got, want); d > tol {
				t.Errorf("%s: RequiredRawBERForFER(%g) = %.17g, reference %.17g (rel diff %.3g > %.3g)",
					code.Name(), target, got, want, d, tol)
			}
		}
	}
}

func TestPlanRegistryMemoizes(t *testing.T) {
	a := PlanFor(MustHamming74())
	b := PlanFor(MustHamming74()) // distinct instance, same identity
	if a != b {
		t.Error("PlanFor must return the same memoized plan for equal code identities")
	}
	if a == PlanFor(MustHamming7164()) {
		t.Error("distinct codes must not share a plan")
	}
	if a.Code().Name() != "H(7,4)" {
		t.Errorf("plan carries code %q, want H(7,4)", a.Code().Name())
	}
}

func TestPlanInversionRoundTrips(t *testing.T) {
	// The planned Newton inversions must land on raw BERs whose forward
	// model reproduces the target.
	for _, code := range ExtendedSchemes() {
		plan := PlanFor(code)
		for _, target := range []float64{1e-11, 1e-6, 1e-3} {
			p, err := plan.RequiredRawBER(target)
			if err != nil {
				t.Fatalf("%s: RequiredRawBER(%g): %v", code.Name(), target, err)
			}
			if back := plan.PostDecodeBER(p); relDiff(back, target) > 1e-9 {
				t.Errorf("%s: BER round trip %g → %g", code.Name(), target, back)
			}
			pf, err := plan.RequiredRawBERForFER(target)
			if err != nil {
				t.Fatalf("%s: RequiredRawBERForFER(%g): %v", code.Name(), target, err)
			}
			// FrameErrorRate's legacy 1 − Σ_head form carries ≈2e-16
			// absolute roundoff, so the round trip is only observable to
			// ≈5e-16/target relative at deep targets.
			ferTol := math.Max(1e-9, 5e-16/target)
			if back := plan.FrameErrorRate(pf); relDiff(back, target) > ferTol {
				t.Errorf("%s: FER round trip %g → %g", code.Name(), target, back)
			}
		}
	}
}

func BenchmarkRequiredRawBERPlanned(b *testing.B) {
	plan := PlanFor(MustBCH3121())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := plan.RequiredRawBER(1e-11); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRequiredRawBERReference(b *testing.B) {
	code := MustBCH3121()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := referenceRequiredRawBER(code, 1e-11, 1e-12); err != nil {
			b.Fatal(err)
		}
	}
}
