package ecc

import (
	"math/rand"
	"testing"

	"photonoc/internal/bits"
)

func TestSECDEDParameters(t *testing.T) {
	code := MustSECDED7264()
	if code.N() != 72 || code.K() != 64 || code.T() != 1 {
		t.Fatalf("SECDED dims wrong: %s", Describe(code))
	}
	if code.Name() != "SECDED(72,64)" {
		t.Errorf("Name = %q", code.Name())
	}
}

func TestSECDEDMinimumDistanceFour(t *testing.T) {
	// Exhaustive on the small extension SECDED(8,4): every nonzero
	// codeword has weight >= 4.
	code, err := NewExtendedHamming(3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if code.N() != 8 || code.K() != 4 {
		t.Fatalf("extended H(8,4) dims: %s", Describe(code))
	}
	minW := 8
	for v := 1; v < 16; v++ {
		word, err := code.Encode(bits.FromUint(uint64(v), 4))
		if err != nil {
			t.Fatal(err)
		}
		if w := word.PopCount(); w < minW {
			minW = w
		}
	}
	if minW != 4 {
		t.Errorf("extended Hamming minimum distance = %d, want 4", minW)
	}
}

func TestSECDEDCorrectsAllSingleErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	code := MustSECDED7264()
	for pos := 0; pos < code.N(); pos++ {
		data := randomData(rng, code.K())
		word, err := code.Encode(data)
		if err != nil {
			t.Fatal(err)
		}
		word.Flip(pos)
		got, info, err := code.Decode(word)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(data) || info.Corrected != 1 || info.Detected {
			t.Fatalf("single error at %d not corrected (info %+v)", pos, info)
		}
	}
}

func TestSECDEDDetectsAllDoubleErrors(t *testing.T) {
	// Exhaustive on SECDED(8,4): every pair of errors must be *detected*
	// (this is the whole point of the extension over plain Hamming).
	code, err := NewExtendedHamming(3, 0)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	data := randomData(rng, code.K())
	clean, err := code.Encode(data)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < code.N(); i++ {
		for j := i + 1; j < code.N(); j++ {
			w := clean.Clone()
			w.Flip(i)
			w.Flip(j)
			_, info, err := code.Decode(w)
			if err != nil {
				t.Fatal(err)
			}
			if !info.Detected {
				t.Fatalf("double error (%d,%d) not detected", i, j)
			}
		}
	}
}

func TestSECDEDDetectsRandomDoubleErrors72(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	code := MustSECDED7264()
	for trial := 0; trial < 500; trial++ {
		data := randomData(rng, code.K())
		word, err := code.Encode(data)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := bits.FlipExactly(word, rng, 2); err != nil {
			t.Fatal(err)
		}
		_, info, err := code.Decode(word)
		if err != nil {
			t.Fatal(err)
		}
		if !info.Detected {
			t.Fatal("double error not detected by SECDED(72,64)")
		}
	}
}

func TestSECDEDRoundTripAndSizeErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	code := MustSECDED7264()
	for trial := 0; trial < 100; trial++ {
		data := randomData(rng, 64)
		word, err := code.Encode(data)
		if err != nil {
			t.Fatal(err)
		}
		got, info, err := code.Decode(word)
		if err != nil || !got.Equal(data) || info.Corrected != 0 || info.Detected {
			t.Fatalf("clean roundtrip failed: %+v %v", info, err)
		}
	}
	if _, err := code.Encode(bits.New(63)); err == nil {
		t.Error("wrong data size should error")
	}
	if _, _, err := code.Decode(bits.New(71)); err == nil {
		t.Error("wrong word size should error")
	}
}
