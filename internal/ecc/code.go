// Package ecc implements the error-correction codes evaluated by the paper —
// uncoded transmission, Hamming(7,4) and the shortened Hamming(71,64) — plus
// the natural extensions the paper mentions ("other coding techniques can be
// used"): extended Hamming (SECDED), repetition, single-parity and
// double-error-correcting BCH codes.
//
// It also provides the analytic BER machinery of Section IV-D: the SNR↔BER
// relations (Eq. 1 and 3), the Hamming post-decoding BER (Eq. 2), a general
// union-bound model for t-error-correcting codes, and their numeric
// inversions used by the link configurator.
package ecc

import (
	"fmt"

	"photonoc/internal/bits"
)

// Code is a binary block code. Implementations are systematic: the K data
// bits appear verbatim inside the N-bit codeword (the exact layout is an
// implementation detail; Encode and Decode are always mutually consistent).
//
// The single-letter method names follow coding-theory convention:
// an (n, k) code correcting t errors per block.
type Code interface {
	// Name is a short display name such as "H(7,4)".
	Name() string
	// N returns the codeword length in bits.
	N() int
	// K returns the number of data bits per codeword.
	K() int
	// T returns the number of bit errors per block the decoder is
	// guaranteed to correct.
	T() int
	// Encode maps K data bits to an N-bit codeword.
	Encode(data bits.Vector) (bits.Vector, error)
	// Decode maps a (possibly corrupted) N-bit word back to K data bits,
	// correcting up to T errors.
	Decode(word bits.Vector) (bits.Vector, DecodeInfo, error)
}

// InplaceCode is implemented by codes whose encode/decode can run into
// caller-provided buffers: EncodeInto writes the N-bit codeword for data into
// dst, DecodeInto recovers the K data bits of word into dst, both with the
// same semantics (and validation errors) as Encode/Decode but without
// allocating the result. Every code in this package implements it; the
// Monte-Carlo runners and the serdes pipeline run exclusively through these
// seams.
type InplaceCode interface {
	Code
	EncodeInto(dst, data bits.Vector) error
	DecodeInto(dst, word bits.Vector) (DecodeInfo, error)
}

// encodeIntoAny encodes through the InplaceCode seam when available and
// falls back on a copy from Encode otherwise.
func encodeIntoAny(c Code, dst, data bits.Vector) error {
	if ic, ok := c.(InplaceCode); ok {
		return ic.EncodeInto(dst, data)
	}
	w, err := c.Encode(data)
	if err != nil {
		return err
	}
	w.CopyInto(dst, 0)
	return nil
}

// decodeIntoAny decodes through the InplaceCode seam when available and
// falls back on a copy from Decode otherwise.
func decodeIntoAny(c Code, dst, word bits.Vector) (DecodeInfo, error) {
	if ic, ok := c.(InplaceCode); ok {
		return ic.DecodeInto(dst, word)
	}
	d, info, err := c.Decode(word)
	if err != nil {
		return DecodeInfo{}, err
	}
	d.CopyInto(dst, 0)
	return info, nil
}

// DecodeInfo reports what the decoder did to a received word.
type DecodeInfo struct {
	// Corrected is the number of bit flips the decoder applied.
	Corrected int
	// Detected is true when the decoder saw an error pattern it could
	// not correct (the returned data should be treated as suspect).
	Detected bool
}

// BERModeler is implemented by codes that know an exact (or better)
// post-decoding BER expression than the generic models in this package.
// PostDecodeBER consults it before falling back on Eq. 2 / union bound.
type BERModeler interface {
	PostDecodeBER(p float64) float64
}

// Rate returns the code rate k/n.
func Rate(c Code) float64 { return float64(c.K()) / float64(c.N()) }

// CT returns the paper's Communication Time metric: the transmission-time
// expansion n/k relative to uncoded transfer of the same payload
// (CT = 1.75 for H(7,4), 1.109 for H(71,64), 1 for uncoded).
func CT(c Code) float64 { return float64(c.N()) / float64(c.K()) }

// Overhead returns the fraction of transmitted bits that are redundancy.
func Overhead(c Code) float64 { return 1 - Rate(c) }

// Describe returns a one-line human-readable summary of the code.
func Describe(c Code) string {
	return fmt.Sprintf("%s: (n=%d, k=%d, t=%d) rate=%.3f CT=%.3f",
		c.Name(), c.N(), c.K(), c.T(), Rate(c), CT(c))
}

// checkDataLen validates an Encode input size.
func checkDataLen(c Code, data bits.Vector) error {
	if data.Len() != c.K() {
		return fmt.Errorf("ecc: %s: Encode needs %d data bits, got %d", c.Name(), c.K(), data.Len())
	}
	return nil
}

// checkEncodeDst validates an EncodeInto destination size (N bits).
func checkEncodeDst(c Code, dst bits.Vector) error {
	if dst.Len() != c.N() {
		return fmt.Errorf("ecc: %s: EncodeInto needs a %d-bit destination, got %d", c.Name(), c.N(), dst.Len())
	}
	return nil
}

// checkDecodeDst validates a DecodeInto destination size (K bits).
func checkDecodeDst(c Code, dst bits.Vector) error {
	if dst.Len() != c.K() {
		return fmt.Errorf("ecc: %s: DecodeInto needs a %d-bit destination, got %d", c.Name(), c.K(), dst.Len())
	}
	return nil
}

// checkWordLen validates a Decode input size.
func checkWordLen(c Code, word bits.Vector) error {
	if word.Len() != c.N() {
		return fmt.Errorf("ecc: %s: Decode needs %d-bit words, got %d", c.Name(), c.N(), word.Len())
	}
	return nil
}
