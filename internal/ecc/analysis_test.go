package ecc

import (
	"math"
	"testing"

	"photonoc/internal/mathx"
)

func TestSNRBERRoundTrip(t *testing.T) {
	// Property: RawBERFromSNR(SNRForRawBER(p)) == p across the whole range.
	for _, p := range mathx.Logspace(1e-14, 0.4, 200) {
		snr, err := SNRForRawBER(p)
		if err != nil {
			t.Fatalf("SNRForRawBER(%g): %v", p, err)
		}
		back := RawBERFromSNR(snr)
		if !approx(back/p, 1, 1e-9) {
			t.Fatalf("roundtrip p=%g → snr=%g → %g", p, snr, back)
		}
	}
}

func TestSNRForRawBERPaperOperatingPoints(t *testing.T) {
	// Uncoded BER 1e-11 needs SNR ≈ 22.49 (√SNR ≈ 4.742); BER 1e-12 ≈ 24.74.
	snr11, err := SNRForRawBER(1e-11)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(snr11, 22.485, 1e-3) {
		t.Errorf("SNR@1e-11 = %g, want ≈22.49", snr11)
	}
	snr12, err := SNRForRawBER(1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(snr12, 24.742, 1e-3) {
		t.Errorf("SNR@1e-12 = %g, want ≈24.74", snr12)
	}
	if snr12 <= snr11 {
		t.Error("tighter BER must require more SNR")
	}
}

func TestSNRForRawBERValidation(t *testing.T) {
	for _, bad := range []float64{0, -1, 0.6, 1} {
		if _, err := SNRForRawBER(bad); err == nil {
			t.Errorf("SNRForRawBER(%g) should error", bad)
		}
	}
	if RawBERFromSNR(-1) != 0.5 {
		t.Error("negative SNR should saturate at 0.5")
	}
}

func TestPaperHammingBERLeadingOrder(t *testing.T) {
	// For small p, Eq. 2 behaves as (n−1)p².
	for _, n := range []int{7, 71, 127} {
		p := 1e-7
		got := PaperHammingBER(n, p)
		want := float64(n-1) * p * p
		if !approx(got/want, 1, 1e-3) {
			t.Errorf("n=%d: Eq2(%g) = %g, leading order %g", n, p, got, want)
		}
	}
	if PaperHammingBER(7, 0) != 0 || PaperHammingBER(7, 1) != 1 {
		t.Error("Eq2 boundary values wrong")
	}
}

func TestPaperHammingBERMonotone(t *testing.T) {
	prev := 0.0
	for _, p := range mathx.Logspace(1e-12, 0.4, 100) {
		cur := PaperHammingBER(71, p)
		if cur <= prev {
			t.Fatalf("Eq2 not strictly increasing at p=%g", p)
		}
		prev = cur
	}
}

func TestUnionBoundBER(t *testing.T) {
	// Leading order for t=2: ((t+1+t)/n)·C(n,3)·p³ = (5/n)·C(n,3)·p³.
	n, tt, p := 15, 2, 1e-6
	got := UnionBoundBER(n, tt, p)
	want := 5.0 / 15 * 455 * p * p * p // C(15,3)=455
	if !approx(got/want, 1, 1e-3) {
		t.Errorf("union bound = %g, leading order %g", got, want)
	}
	if UnionBoundBER(15, 2, 0) != 0 || UnionBoundBER(15, 2, 1) != 1 {
		t.Error("union bound boundaries wrong")
	}
	// Saturation: at p=0.5 the bound must stay within [0,1].
	if v := UnionBoundBER(127, 2, 0.5); v < 0 || v > 1 {
		t.Errorf("union bound out of range: %g", v)
	}
}

func TestPostDecodeBERDispatch(t *testing.T) {
	p := 1e-4
	// Uncoded: pass-through (BERModeler).
	if got := PostDecodeBER(MustUncoded64(), p); got != p {
		t.Errorf("uncoded: %g", got)
	}
	// Hamming: Eq. 2.
	if got := PostDecodeBER(MustHamming74(), p); !approx(got, PaperHammingBER(7, p), 1e-12) {
		t.Errorf("H(7,4) dispatch: %g", got)
	}
	// BCH: union bound.
	if got := PostDecodeBER(MustBCH157(), p); !approx(got, UnionBoundBER(15, 2, p), 1e-12) {
		t.Errorf("BCH dispatch: %g", got)
	}
	// Repetition: exact model.
	rep, _ := NewRepetition(1, 3)
	if got := PostDecodeBER(rep, p); !approx(got, 3*p*p*(1-p)+p*p*p, 1e-12) {
		t.Errorf("repetition dispatch: %g", got)
	}
}

func TestRequiredRawBERRoundTrip(t *testing.T) {
	// Property: PostDecodeBER(c, RequiredRawBER(c, target)) == target for
	// every scheme and BER in the paper's sweep range.
	for _, c := range ExtendedSchemes() {
		for _, target := range mathx.Logspace(1e-12, 1e-3, 10) {
			p, err := RequiredRawBER(c, target)
			if err != nil {
				t.Fatalf("%s @ %g: %v", c.Name(), target, err)
			}
			back := PostDecodeBER(c, p)
			if !approx(back/target, 1, 1e-6) {
				t.Fatalf("%s @ %g: raw %g gives %g", c.Name(), target, p, back)
			}
		}
	}
}

func TestRequiredRawBERPaperValues(t *testing.T) {
	// At target 1e-11: H(7,4) tolerates raw p ≈ 1.29e-6 and H(71,64)
	// p ≈ 3.78e-7 — the relaxation that lets the laser power drop ~50%.
	p74, err := RequiredRawBER(MustHamming74(), 1e-11)
	if err != nil {
		t.Fatal(err)
	}
	if p74 < 1.2e-6 || p74 > 1.4e-6 {
		t.Errorf("H(7,4) raw BER @1e-11 = %g, want ≈1.29e-6", p74)
	}
	p7164, err := RequiredRawBER(MustHamming7164(), 1e-11)
	if err != nil {
		t.Fatal(err)
	}
	if p7164 < 3.5e-7 || p7164 > 4.1e-7 {
		t.Errorf("H(71,64) raw BER @1e-11 = %g, want ≈3.78e-7", p7164)
	}
	// The stronger per-block corrector tolerates the higher raw rate.
	if p74 <= p7164 {
		t.Error("H(7,4) should tolerate a higher raw error rate than H(71,64)")
	}
}

func TestRequiredRawBERValidation(t *testing.T) {
	if _, err := RequiredRawBER(MustHamming74(), 0); err == nil {
		t.Error("target 0 should error")
	}
	if _, err := RequiredRawBER(MustHamming74(), 0.5); err == nil {
		t.Error("target 0.5 should error")
	}
}

func TestCodingGainPositiveAndOrdered(t *testing.T) {
	// Both Hamming codes show positive coding gain at 1e-11, H(7,4) more.
	g74, err := CodingGainDB(MustHamming74(), 1e-11)
	if err != nil {
		t.Fatal(err)
	}
	g7164, err := CodingGainDB(MustHamming7164(), 1e-11)
	if err != nil {
		t.Fatal(err)
	}
	if g74 <= 0 || g7164 <= 0 {
		t.Errorf("coding gains must be positive: %g, %g", g74, g7164)
	}
	if g74 <= g7164 {
		t.Errorf("H(7,4) gain %g should exceed H(71,64) gain %g", g74, g7164)
	}
	// Sanity: gains are a handful of dB, not orders of magnitude.
	if g74 > 10 {
		t.Errorf("H(7,4) gain %g dB implausibly large", g74)
	}
}

func TestRequiredSNRDecreasesWithStrongerCode(t *testing.T) {
	target := 1e-11
	snrU, _ := SNRForRawBER(target)
	snr7164, err := RequiredSNR(MustHamming7164(), target)
	if err != nil {
		t.Fatal(err)
	}
	snr74, err := RequiredSNR(MustHamming74(), target)
	if err != nil {
		t.Fatal(err)
	}
	if !(snr74 < snr7164 && snr7164 < snrU) {
		t.Errorf("SNR ordering wrong: %g (H74) vs %g (H7164) vs %g (uncoded)", snr74, snr7164, snrU)
	}
	// Paper-scale check: roughly half the SNR with H(7,4).
	if ratio := snr74 / snrU; ratio < 0.4 || ratio > 0.6 {
		t.Errorf("H(7,4)/uncoded SNR ratio = %g, want ≈0.5", ratio)
	}
}

func TestBinomialTermAgainstDirect(t *testing.T) {
	// Small cases computable directly.
	if got := binomialTerm(4, 2, 0.5); !approx(got, 6.0/16, 1e-12) {
		t.Errorf("C(4,2)/16 = %g", got)
	}
	if got := binomialTerm(10, 0, 0.1); !approx(got, math.Pow(0.9, 10), 1e-12) {
		t.Errorf("(1-p)^10 = %g", got)
	}
}
