package ecc

import (
	mathbits "math/bits"
)

// SlicedWidth is the number of independent frames one bit-sliced word-op
// processes: the bit-sliced Monte-Carlo layout is lane-major — sliced word i
// holds codeword bit i of SlicedWidth frames, frame f occupying bit f of
// every word — so one 64-bit XOR/AND/popcount advances all 64 frames at once.
const SlicedWidth = 64

// SlicedInfo aggregates what a bit-sliced decode did across its SlicedWidth
// frames.
type SlicedInfo struct {
	// Corrected is the total number of bit flips applied across all frames.
	Corrected int
	// Detected is the per-frame mask of detected-uncorrectable outcomes:
	// bit f set means frame f's word was flagged Detected.
	Detected uint64
}

// Slicer is implemented by codes with bit-sliced kernels. data holds K
// sliced words and word N sliced words; both methods are allocation-free and
// overwrite their destination completely. DecodeSliced must agree exactly,
// frame by frame, with Decode applied to the transposed frames (the property
// tests enforce this across the registry).
//
// Obtain a Slicer through AsSlicer rather than type-asserting: composed
// codes may carry the methods while only supporting them for particular
// inner codes.
type Slicer interface {
	Code
	// EncodeSliced computes the N sliced codeword words from K sliced data
	// words.
	EncodeSliced(word, data []uint64)
	// DecodeSliced recovers the K sliced data words from N received sliced
	// words and reports the aggregate decode outcome.
	DecodeSliced(data, word []uint64) SlicedInfo
}

// AsSlicer returns the bit-sliced kernel of c when one is available:
// LinearCode (Hamming, shortened Hamming, parity), Uncoded, ExtendedHamming,
// Repetition, and InterleavedCode over a LinearCode inner. Codes without a
// kernel (BCH's algebraic decoder, interleaved compositions over non-linear
// inners) return false and run on the scalar per-frame path.
func AsSlicer(c Code) (Slicer, bool) {
	if il, ok := c.(*InterleavedCode); ok {
		if il.innerLin == nil {
			return nil, false
		}
		return il, true
	}
	s, ok := c.(Slicer)
	return s, ok
}

// EncodeSliced implements Slicer: the data words pass through and each
// parity slice is the XOR of the data slices in its footprint — one word-op
// per (parity, footprint-bit) pair for 64 frames.
func (c *LinearCode) EncodeSliced(word, data []uint64) {
	copy(word[:c.k], data[:c.k])
	for j, idx := range c.parityIdx {
		var acc uint64
		for _, i := range idx {
			acc ^= data[i]
		}
		word[c.k+j] = acc
	}
}

// syndromeSlices fills synd[j] with sliced syndrome bit j of the received
// sliced word and returns the OR of all syndrome slices — the mask of frames
// with a nonzero syndrome. word may carry extra trailing slices (the SECDED
// extension bit); only the N code positions are read.
func (c *LinearCode) syndromeSlices(synd, word []uint64) uint64 {
	var nz uint64
	for j, idx := range c.parityIdx {
		s := word[c.k+j]
		for _, i := range idx {
			s ^= word[i]
		}
		synd[j] = s
		nz |= s
	}
	return nz
}

// gatherSyndrome extracts frame f's r-bit syndrome from the sliced syndrome
// words.
func gatherSyndrome(synd []uint64, f uint) uint64 {
	var s uint64
	for j := range synd {
		s |= (synd[j] >> f & 1) << uint(j)
	}
	return s
}

// DecodeSliced implements Slicer. Clean frames (the overwhelming majority at
// operating BERs) cost only the syndrome word-ops; frames with a nonzero
// syndrome are resolved one by one through the dense table.
func (c *LinearCode) DecodeSliced(data, word []uint64) SlicedInfo {
	copy(data[:c.k], word[:c.k])
	var info SlicedInfo
	var syndBuf [64]uint64
	synd := syndBuf[:c.r]
	nz := c.syndromeSlices(synd, word)
	if c.t == 0 {
		info.Detected = nz
		return info
	}
	for m := nz; m != 0; m &= m - 1 {
		f := uint(mathbits.TrailingZeros64(m))
		pos, ok := c.synLookup(gatherSyndrome(synd, f))
		if !ok {
			info.Detected |= 1 << f
			continue
		}
		if pos < c.k {
			data[pos] ^= 1 << f
		}
		info.Corrected++
	}
	return info
}

// EncodeSliced implements Slicer (identity).
func (c *Uncoded) EncodeSliced(word, data []uint64) {
	copy(word[:c.k], data[:c.k])
}

// DecodeSliced implements Slicer (identity).
func (c *Uncoded) DecodeSliced(data, word []uint64) SlicedInfo {
	copy(data[:c.k], word[:c.k])
	return SlicedInfo{}
}

// EncodeSliced implements Slicer: the inner kernel plus the overall parity
// slice (XOR of every inner codeword slice).
func (c *ExtendedHamming) EncodeSliced(word, data []uint64) {
	in := c.inner
	innerN := in.N()
	in.EncodeSliced(word[:innerN], data)
	var acc uint64
	for i := 0; i < innerN; i++ {
		acc ^= word[i]
	}
	word[innerN] = acc
}

// DecodeSliced implements Slicer with the SECDED case analysis: the frames
// needing attention are exactly those in (nonzero syndrome) OR (bad overall
// parity).
func (c *ExtendedHamming) DecodeSliced(data, word []uint64) SlicedInfo {
	in := c.inner
	copy(data[:in.k], word[:in.k])
	var syndBuf [64]uint64
	synd := syndBuf[:in.r]
	nz := in.syndromeSlices(synd, word)
	var parityBad uint64
	for _, w := range word {
		parityBad ^= w
	}
	var info SlicedInfo
	for m := nz | parityBad; m != 0; m &= m - 1 {
		f := uint(mathbits.TrailingZeros64(m))
		s := gatherSyndrome(synd, f)
		pb := parityBad>>f&1 == 1
		switch {
		case s == 0:
			// pb must hold: only the appended parity bit flipped.
			info.Corrected++
		case pb:
			pos, ok := in.synLookup(s)
			if !ok {
				info.Detected |= 1 << f
				continue
			}
			if pos < in.k {
				data[pos] ^= 1 << f
			}
			info.Corrected++
		default:
			// Nonzero syndrome, good parity: double error, uncorrectable.
			info.Detected |= 1 << f
		}
	}
	return info
}

// EncodeSliced implements Slicer: each data slice is replicated r times.
func (c *Repetition) EncodeSliced(word, data []uint64) {
	for i := 0; i < c.k; i++ {
		base := i * c.r
		for j := 0; j < c.r; j++ {
			word[base+j] = data[i]
		}
	}
}

// DecodeSliced implements Slicer: a carry-save adder accumulates the r copy
// slices into a per-lane binary counter, and a bitwise comparator decides
// count > r/2 for all 64 lanes at once.
func (c *Repetition) DecodeSliced(data, word []uint64) SlicedInfo {
	var info SlicedInfo
	h := c.r / 2
	width := mathbits.Len(uint(c.r))
	var cntBuf [64]uint64 // binary counter bits; width = Len(r) <= 64 always
	cnt := cntBuf[:width]
	for i := 0; i < c.k; i++ {
		base := i * c.r
		for b := range cnt {
			cnt[b] = 0
		}
		for j := 0; j < c.r; j++ {
			x := word[base+j]
			for b := 0; b < width && x != 0; b++ {
				carry := cnt[b] & x
				cnt[b] ^= x
				x = carry
			}
		}
		// Per-lane comparison cnt > h, walking the counter bits MSB-first.
		var gt uint64
		eq := ^uint64(0)
		for b := width - 1; b >= 0; b-- {
			var tb uint64
			if h>>uint(b)&1 == 1 {
				tb = ^uint64(0)
			}
			gt |= eq & cnt[b] &^ tb
			eq &= ^(cnt[b] ^ tb)
		}
		data[i] = gt
		// Minority copies are the corrections the majority vote implied.
		for j := 0; j < c.r; j++ {
			info.Corrected += mathbits.OnesCount64(word[base+j] ^ gt)
		}
	}
	return info
}

// EncodeSliced implements Slicer for LinearCode inners: the interleaver
// permutation is a pure re-indexing of sliced words, so each inner block
// encodes directly into its scattered positions with no scratch.
// AsSlicer guards availability; calling this with a non-LinearCode inner
// panics.
func (c *InterleavedCode) EncodeSliced(word, data []uint64) {
	in := c.innerLin
	depth, k := c.il.depth, in.k
	for row := 0; row < depth; row++ {
		d := data[row*k : (row+1)*k]
		for col := 0; col < k; col++ {
			word[col*depth+row] = d[col]
		}
		for j, idx := range in.parityIdx {
			var acc uint64
			for _, i := range idx {
				acc ^= d[i]
			}
			word[(k+j)*depth+row] = acc
		}
	}
}

// DecodeSliced implements Slicer for LinearCode inners; see EncodeSliced.
func (c *InterleavedCode) DecodeSliced(data, word []uint64) SlicedInfo {
	in := c.innerLin
	depth, k, r := c.il.depth, in.k, in.r
	var info SlicedInfo
	var syndBuf [64]uint64
	synd := syndBuf[:r]
	for row := 0; row < depth; row++ {
		out := data[row*k : (row+1)*k]
		for col := 0; col < k; col++ {
			out[col] = word[col*depth+row]
		}
		var nz uint64
		for j, idx := range in.parityIdx {
			s := word[(k+j)*depth+row]
			for _, i := range idx {
				s ^= word[int(i)*depth+row]
			}
			synd[j] = s
			nz |= s
		}
		if in.t == 0 {
			info.Detected |= nz
			continue
		}
		for m := nz; m != 0; m &= m - 1 {
			f := uint(mathbits.TrailingZeros64(m))
			pos, ok := in.synLookup(gatherSyndrome(synd, f))
			if !ok {
				info.Detected |= 1 << f
				continue
			}
			if pos < k {
				out[pos] ^= 1 << f
			}
			info.Corrected++
		}
	}
	return info
}
