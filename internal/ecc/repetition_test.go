package ecc

import (
	"math/rand"
	"testing"

	"photonoc/internal/bits"
)

func TestRepetitionValidation(t *testing.T) {
	if _, err := NewRepetition(0, 3); err == nil {
		t.Error("k=0 should fail")
	}
	if _, err := NewRepetition(4, 2); err == nil {
		t.Error("even factor should fail")
	}
	if _, err := NewRepetition(4, 1); err == nil {
		t.Error("factor 1 should fail")
	}
}

func TestRepetitionRoundTripAndCorrection(t *testing.T) {
	code, err := NewRepetition(8, 3)
	if err != nil {
		t.Fatal(err)
	}
	if code.N() != 24 || code.K() != 8 || code.T() != 1 {
		t.Fatalf("dims: %s", Describe(code))
	}
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 200; trial++ {
		data := randomData(rng, 8)
		word, err := code.Encode(data)
		if err != nil {
			t.Fatal(err)
		}
		// One flip in every 3-bit block is always repaired.
		for i := 0; i < 8; i++ {
			word.Flip(i*3 + rng.Intn(3))
		}
		got, info, err := code.Decode(word)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(data) {
			t.Fatal("per-block single flips not corrected")
		}
		if info.Corrected != 8 {
			t.Errorf("Corrected = %d, want 8", info.Corrected)
		}
	}
}

func TestRepetitionFiveWayCorrectsTwoPerBlock(t *testing.T) {
	code, err := NewRepetition(4, 5)
	if err != nil {
		t.Fatal(err)
	}
	if code.T() != 2 {
		t.Fatalf("T = %d, want 2", code.T())
	}
	rng := rand.New(rand.NewSource(20))
	data := randomData(rng, 4)
	word, err := code.Encode(data)
	if err != nil {
		t.Fatal(err)
	}
	// Two flips in one block.
	word.Flip(5)
	word.Flip(7)
	got, _, err := code.Decode(word)
	if err != nil || !got.Equal(data) {
		t.Error("two flips within a 5-way block should be repaired")
	}
}

func TestRepetitionExactBERModel(t *testing.T) {
	// The closed form 3p²−2p³ for triple repetition.
	code, err := NewRepetition(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []float64{1e-4, 1e-3, 0.01, 0.1, 0.3} {
		want := 3*p*p*(1-p) + p*p*p
		if got := code.PostDecodeBER(p); !approx(got, want, 1e-9) {
			t.Errorf("PostDecodeBER(%g) = %g, want %g", p, got, want)
		}
	}
	if got := code.PostDecodeBER(0); got != 0 {
		t.Errorf("PostDecodeBER(0) = %g", got)
	}
}

func TestRepetitionModelMatchesMonteCarlo(t *testing.T) {
	// Cross-check the analytic majority-vote BER against simulation at a
	// high error rate where sampling is cheap.
	code, err := NewRepetition(16, 3)
	if err != nil {
		t.Fatal(err)
	}
	const p = 0.05
	rng := rand.New(rand.NewSource(21))
	errors, total := 0, 0
	for trial := 0; trial < 2000; trial++ {
		data := randomData(rng, 16)
		word, err := code.Encode(data)
		if err != nil {
			t.Fatal(err)
		}
		bits.FlipRandom(word, rng, p)
		got, _, err := code.Decode(word)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 16; i++ {
			if got.Bit(i) != data.Bit(i) {
				errors++
			}
			total++
		}
	}
	sim := float64(errors) / float64(total)
	want := code.PostDecodeBER(p)
	if sim < want*0.8 || sim > want*1.2 {
		t.Errorf("simulated BER %g vs model %g (>20%% apart)", sim, want)
	}
}
