package ecc

import (
	"fmt"

	"photonoc/internal/bits"
	"photonoc/internal/gf2"
)

// LinearCode is a systematic binary linear block code described by its
// parity submatrix P (k rows × r columns): the generator matrix is
// G = [I_k | P] and the parity-check matrix H = [Pᵀ | I_r]. Codewords carry
// the data bits first, then the r parity bits.
//
// Single-error-correcting instances (t = 1) decode by syndrome lookup; a
// syndrome with no table entry — possible for shortened codes — is reported
// as a detected, uncorrectable error.
type LinearCode struct {
	name string
	k, r int
	t    int
	// parityMasks[j] is a packed mask over the data words: parity bit j is
	// the parity of data AND mask. This is the bitwise image of column j
	// of P and the hot loop of Encode.
	parityMasks [][]uint64
	// synDecode maps a syndrome (as an r-bit integer) to the codeword
	// position it corrects. Populated only for t == 1 codes.
	synDecode map[uint64]int
	g, h      *gf2.Matrix
}

// NewLinear builds a systematic linear code from its parity submatrix.
// t must be 0 (detect-only or no protection) or 1 (single-error correction
// by syndrome lookup); higher-t codes use dedicated decoders (see BCH).
func NewLinear(name string, p *gf2.Matrix, t int) (*LinearCode, error) {
	k, r := p.Rows(), p.Cols()
	if k <= 0 || r < 0 {
		return nil, fmt.Errorf("ecc: %s: invalid parity matrix %dx%d", name, k, r)
	}
	if r > 63 {
		return nil, fmt.Errorf("ecc: %s: %d parity bits exceed the 63-bit syndrome limit", name, r)
	}
	if t < 0 || t > 1 {
		return nil, fmt.Errorf("ecc: %s: NewLinear supports t in {0,1}, got %d", name, t)
	}
	c := &LinearCode{name: name, k: k, r: r, t: t}

	dataWords := (k + 63) / 64
	c.parityMasks = make([][]uint64, r)
	for j := 0; j < r; j++ {
		mask := make([]uint64, dataWords)
		for i := 0; i < k; i++ {
			if p.At(i, j) == 1 {
				mask[i>>6] |= 1 << (uint(i) & 63)
			}
		}
		c.parityMasks[j] = mask
	}

	// G = [I_k | P], H = [Pᵀ | I_r]; retained for verification and tests.
	var err error
	if c.g, err = gf2.Identity(k).Augment(p); err != nil {
		return nil, err
	}
	if c.h, err = p.Transpose().Augment(gf2.Identity(r)); err != nil {
		return nil, err
	}
	prod, err := c.g.Mul(c.h.Transpose())
	if err != nil {
		return nil, err
	}
	if !prod.IsZero() {
		return nil, fmt.Errorf("ecc: %s: G·Hᵀ != 0; inconsistent construction", name)
	}

	if t == 1 {
		c.synDecode = make(map[uint64]int, k+r)
		for i := 0; i < k; i++ {
			var syn uint64
			for j := 0; j < r; j++ {
				if p.At(i, j) == 1 {
					syn |= 1 << uint(j)
				}
			}
			if syn == 0 {
				return nil, fmt.Errorf("ecc: %s: data bit %d has empty parity footprint; d_min < 2", name, i)
			}
			if prev, dup := c.synDecode[syn]; dup {
				return nil, fmt.Errorf("ecc: %s: data bits %d and %d share syndrome %#x; not single-error-correcting", name, prev, i, syn)
			}
			c.synDecode[syn] = i
		}
		for j := 0; j < r; j++ {
			syn := uint64(1) << uint(j)
			if prev, dup := c.synDecode[syn]; dup {
				return nil, fmt.Errorf("ecc: %s: parity bit %d collides with position %d; not single-error-correcting", name, j, prev)
			}
			c.synDecode[syn] = k + j
		}
	}
	return c, nil
}

// Name implements Code.
func (c *LinearCode) Name() string { return c.name }

// N implements Code.
func (c *LinearCode) N() int { return c.k + c.r }

// K implements Code.
func (c *LinearCode) K() int { return c.k }

// T implements Code.
func (c *LinearCode) T() int { return c.t }

// Generator returns a copy of the generator matrix G = [I_k | P].
func (c *LinearCode) Generator() *gf2.Matrix { return c.g.Clone() }

// ParityCheck returns a copy of the parity-check matrix H = [Pᵀ | I_r].
func (c *LinearCode) ParityCheck() *gf2.Matrix { return c.h.Clone() }

// ParityMask returns the packed data mask of parity bit j (aliased, for the
// synthesis netlist builders which need the exact XOR-tree footprints).
func (c *LinearCode) ParityMask(j int) []uint64 { return c.parityMasks[j] }

// Encode implements Code: codeword = data ++ parity.
func (c *LinearCode) Encode(data bits.Vector) (bits.Vector, error) {
	if err := checkDataLen(c, data); err != nil {
		return bits.Vector{}, err
	}
	out := bits.New(c.N())
	data.CopyInto(out, 0)
	for j, mask := range c.parityMasks {
		out.Set(c.k+j, data.AndMaskParity(mask))
	}
	return out, nil
}

// Syndrome returns the r-bit syndrome of a received word as an integer.
func (c *LinearCode) Syndrome(word bits.Vector) (uint64, error) {
	if err := checkWordLen(c, word); err != nil {
		return 0, err
	}
	data := word.Slice(0, c.k)
	var syn uint64
	for j, mask := range c.parityMasks {
		bit := data.AndMaskParity(mask) ^ word.Bit(c.k+j)
		syn |= uint64(bit) << uint(j)
	}
	return syn, nil
}

// Decode implements Code. For t = 1 codes a nonzero syndrome is corrected by
// table lookup; unknown syndromes (shortened codes) are flagged Detected.
// For t = 0 codes any nonzero syndrome is Detected.
func (c *LinearCode) Decode(word bits.Vector) (bits.Vector, DecodeInfo, error) {
	syn, err := c.Syndrome(word)
	if err != nil {
		return bits.Vector{}, DecodeInfo{}, err
	}
	if syn == 0 {
		return word.Slice(0, c.k), DecodeInfo{}, nil
	}
	if c.t == 0 {
		return word.Slice(0, c.k), DecodeInfo{Detected: true}, nil
	}
	pos, known := c.synDecode[syn]
	if !known {
		return word.Slice(0, c.k), DecodeInfo{Detected: true}, nil
	}
	fixed := word.Clone()
	fixed.Flip(pos)
	return fixed.Slice(0, c.k), DecodeInfo{Corrected: 1}, nil
}
