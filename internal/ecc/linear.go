package ecc

import (
	"fmt"

	"photonoc/internal/bits"
	"photonoc/internal/gf2"
)

// LinearCode is a systematic binary linear block code described by its
// parity submatrix P (k rows × r columns): the generator matrix is
// G = [I_k | P] and the parity-check matrix H = [Pᵀ | I_r]. Codewords carry
// the data bits first, then the r parity bits.
//
// Single-error-correcting instances (t = 1) decode by syndrome lookup; a
// syndrome with no table entry — possible for shortened codes — is reported
// as a detected, uncorrectable error.
type LinearCode struct {
	name string
	k, r int
	t    int
	// parityMasks[j] is a packed mask over the data words: parity bit j is
	// the parity of data AND mask. This is the bitwise image of column j
	// of P and the hot loop of Encode.
	parityMasks [][]uint64
	// parityIdx[j] lists the data-bit positions under parityMasks[j] — the
	// same footprint as an index list, which is what the bit-sliced kernels
	// iterate (one XOR of sliced words per listed position).
	parityIdx [][]int32
	// synDecode maps a syndrome (as an r-bit integer) to the codeword
	// position it corrects. Populated only for t == 1 codes; retained even
	// when the dense table below is built, as the reference lookup.
	synDecode map[uint64]int
	// synTable is the dense image of synDecode, indexed directly by the
	// syndrome: entry s holds the position correcting syndrome s, or
	// synDetected (−1) for syndromes with no entry (detected-uncorrectable,
	// possible for shortened codes). Built for t == 1 codes with
	// r <= denseSynBits; larger codes fall back on the map.
	synTable []int32
	g, h     *gf2.Matrix
}

// denseSynBits caps the dense syndrome table at 2^22 × 4 B = 16 MiB; codes
// with more parity bits keep the map lookup.
const denseSynBits = 22

// synDetected is the dense-table sentinel for syndromes with no correctable
// position.
const synDetected = int32(-1)

// NewLinear builds a systematic linear code from its parity submatrix.
// t must be 0 (detect-only or no protection) or 1 (single-error correction
// by syndrome lookup); higher-t codes use dedicated decoders (see BCH).
func NewLinear(name string, p *gf2.Matrix, t int) (*LinearCode, error) {
	k, r := p.Rows(), p.Cols()
	if k <= 0 || r < 0 {
		return nil, fmt.Errorf("ecc: %s: invalid parity matrix %dx%d", name, k, r)
	}
	if r > 63 {
		return nil, fmt.Errorf("ecc: %s: %d parity bits exceed the 63-bit syndrome limit", name, r)
	}
	if t < 0 || t > 1 {
		return nil, fmt.Errorf("ecc: %s: NewLinear supports t in {0,1}, got %d", name, t)
	}
	c := &LinearCode{name: name, k: k, r: r, t: t}

	dataWords := (k + 63) / 64
	c.parityMasks = make([][]uint64, r)
	c.parityIdx = make([][]int32, r)
	for j := 0; j < r; j++ {
		mask := make([]uint64, dataWords)
		var idx []int32
		for i := 0; i < k; i++ {
			if p.At(i, j) == 1 {
				mask[i>>6] |= 1 << (uint(i) & 63)
				idx = append(idx, int32(i))
			}
		}
		c.parityMasks[j] = mask
		c.parityIdx[j] = idx
	}

	// G = [I_k | P], H = [Pᵀ | I_r]; retained for verification and tests.
	var err error
	if c.g, err = gf2.Identity(k).Augment(p); err != nil {
		return nil, err
	}
	if c.h, err = p.Transpose().Augment(gf2.Identity(r)); err != nil {
		return nil, err
	}
	prod, err := c.g.Mul(c.h.Transpose())
	if err != nil {
		return nil, err
	}
	if !prod.IsZero() {
		return nil, fmt.Errorf("ecc: %s: G·Hᵀ != 0; inconsistent construction", name)
	}

	if t == 1 {
		c.synDecode = make(map[uint64]int, k+r)
		for i := 0; i < k; i++ {
			var syn uint64
			for j := 0; j < r; j++ {
				if p.At(i, j) == 1 {
					syn |= 1 << uint(j)
				}
			}
			if syn == 0 {
				return nil, fmt.Errorf("ecc: %s: data bit %d has empty parity footprint; d_min < 2", name, i)
			}
			if prev, dup := c.synDecode[syn]; dup {
				return nil, fmt.Errorf("ecc: %s: data bits %d and %d share syndrome %#x; not single-error-correcting", name, prev, i, syn)
			}
			c.synDecode[syn] = i
		}
		for j := 0; j < r; j++ {
			syn := uint64(1) << uint(j)
			if prev, dup := c.synDecode[syn]; dup {
				return nil, fmt.Errorf("ecc: %s: parity bit %d collides with position %d; not single-error-correcting", name, j, prev)
			}
			c.synDecode[syn] = k + j
		}
		if r <= denseSynBits {
			c.synTable = make([]int32, 1<<uint(r))
			for s := range c.synTable {
				c.synTable[s] = synDetected
			}
			for syn, pos := range c.synDecode {
				c.synTable[syn] = int32(pos)
			}
		}
	}
	return c, nil
}

// synLookup resolves a nonzero syndrome to the codeword position it corrects,
// through the dense table when built and the map otherwise. The boolean
// reports whether the syndrome is correctable.
func (c *LinearCode) synLookup(syn uint64) (int, bool) {
	if c.synTable != nil {
		pos := c.synTable[syn]
		if pos == synDetected {
			return 0, false
		}
		return int(pos), true
	}
	pos, ok := c.synDecode[syn]
	return pos, ok
}

// synLookupMap is the map-only reference lookup, kept for the dense-vs-map
// property tests.
func (c *LinearCode) synLookupMap(syn uint64) (int, bool) {
	pos, ok := c.synDecode[syn]
	return pos, ok
}

// Name implements Code.
func (c *LinearCode) Name() string { return c.name }

// N implements Code.
func (c *LinearCode) N() int { return c.k + c.r }

// K implements Code.
func (c *LinearCode) K() int { return c.k }

// T implements Code.
func (c *LinearCode) T() int { return c.t }

// Generator returns a copy of the generator matrix G = [I_k | P].
func (c *LinearCode) Generator() *gf2.Matrix { return c.g.Clone() }

// ParityCheck returns a copy of the parity-check matrix H = [Pᵀ | I_r].
func (c *LinearCode) ParityCheck() *gf2.Matrix { return c.h.Clone() }

// ParityMask returns the packed data mask of parity bit j (aliased, for the
// synthesis netlist builders which need the exact XOR-tree footprints).
func (c *LinearCode) ParityMask(j int) []uint64 { return c.parityMasks[j] }

// Encode implements Code: codeword = data ++ parity.
func (c *LinearCode) Encode(data bits.Vector) (bits.Vector, error) {
	out := bits.New(c.N())
	if err := c.EncodeInto(out, data); err != nil {
		return bits.Vector{}, err
	}
	return out, nil
}

// EncodeInto implements InplaceCode: it writes the codeword for data into
// dst (length N) without allocating.
func (c *LinearCode) EncodeInto(dst, data bits.Vector) error {
	if err := checkDataLen(c, data); err != nil {
		return err
	}
	if err := checkEncodeDst(c, dst); err != nil {
		return err
	}
	data.CopyInto(dst, 0)
	for j, mask := range c.parityMasks {
		dst.Set(c.k+j, data.AndMaskParity(mask))
	}
	return nil
}

// syndromeOf computes the syndrome of a length-checked word without copying:
// the parity masks cover only data-bit positions, so evaluating them against
// the full codeword (whose trailing words also hold parity bits) reads
// exactly the data prefix. word may be longer than N (the SECDED extension
// reuses this on its N+1-bit words).
func (c *LinearCode) syndromeOf(word bits.Vector) uint64 {
	var syn uint64
	for j, mask := range c.parityMasks {
		bit := word.AndMaskParity(mask) ^ word.Bit(c.k+j)
		syn |= uint64(bit) << uint(j)
	}
	return syn
}

// Syndrome returns the r-bit syndrome of a received word as an integer.
// It allocates nothing.
func (c *LinearCode) Syndrome(word bits.Vector) (uint64, error) {
	if err := checkWordLen(c, word); err != nil {
		return 0, err
	}
	return c.syndromeOf(word), nil
}

// Decode implements Code. For t = 1 codes a nonzero syndrome is corrected by
// syndrome lookup (dense table for r <= 22 parity bits, map above); unknown
// syndromes (shortened codes) are flagged Detected. For t = 0 codes any
// nonzero syndrome is Detected.
func (c *LinearCode) Decode(word bits.Vector) (bits.Vector, DecodeInfo, error) {
	out := bits.New(c.k)
	info, err := c.DecodeInto(out, word)
	if err != nil {
		return bits.Vector{}, DecodeInfo{}, err
	}
	return out, info, nil
}

// DecodeInto implements InplaceCode: it recovers the K data bits of word
// into dst without allocating, under Decode's exact semantics.
func (c *LinearCode) DecodeInto(dst, word bits.Vector) (DecodeInfo, error) {
	if err := checkWordLen(c, word); err != nil {
		return DecodeInfo{}, err
	}
	if err := checkDecodeDst(c, dst); err != nil {
		return DecodeInfo{}, err
	}
	syn := c.syndromeOf(word)
	word.SliceInto(dst, 0)
	if syn == 0 {
		return DecodeInfo{}, nil
	}
	if c.t == 0 {
		return DecodeInfo{Detected: true}, nil
	}
	pos, known := c.synLookup(syn)
	if !known {
		return DecodeInfo{Detected: true}, nil
	}
	if pos < c.k {
		dst.Flip(pos)
	}
	return DecodeInfo{Corrected: 1}, nil
}
