package ecc

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"photonoc/internal/bits"
)

// quickCodes is the roster exercised by the generic property tests,
// including the interleaved composition.
func quickCodes(t *testing.T) []Code {
	t.Helper()
	il, err := NewInterleavedCode(MustHamming74(), 4)
	if err != nil {
		t.Fatal(err)
	}
	return append(ExtendedSchemes(), il)
}

// TestQuickEncodeDecodeIdentity: for every scheme and arbitrary payloads,
// Decode(Encode(x)) == x with a clean report.
func TestQuickEncodeDecodeIdentity(t *testing.T) {
	for _, code := range quickCodes(t) {
		code := code
		prop := func(seed int64) bool {
			rng := rand.New(rand.NewSource(seed))
			data := randomData(rng, code.K())
			word, err := code.Encode(data)
			if err != nil {
				return false
			}
			got, info, err := code.Decode(word)
			return err == nil && got.Equal(data) && info.Corrected == 0 && !info.Detected
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
			t.Errorf("%s: %v", code.Name(), err)
		}
	}
}

// TestQuickSingleErrorProperty: every t>=1 scheme repairs one arbitrary flip.
func TestQuickSingleErrorProperty(t *testing.T) {
	for _, code := range quickCodes(t) {
		if code.T() < 1 {
			continue
		}
		code := code
		prop := func(seed int64, posRaw uint16) bool {
			rng := rand.New(rand.NewSource(seed))
			data := randomData(rng, code.K())
			word, err := code.Encode(data)
			if err != nil {
				return false
			}
			word.Flip(int(posRaw) % code.N())
			got, info, err := code.Decode(word)
			return err == nil && got.Equal(data) && info.Corrected >= 1
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
			t.Errorf("%s: %v", code.Name(), err)
		}
	}
}

// TestQuickLinearityProperty: for the linear codes, the XOR of two codewords
// is itself a codeword (encodes the XOR of the payloads).
func TestQuickLinearityProperty(t *testing.T) {
	linear := []Code{MustHamming74(), MustHamming7164(), MustSECDED7264(), MustBCH157(), MustBCH3121()}
	for _, code := range linear {
		code := code
		prop := func(seed int64) bool {
			rng := rand.New(rand.NewSource(seed))
			a := randomData(rng, code.K())
			b := randomData(rng, code.K())
			ca, err := code.Encode(a)
			if err != nil {
				return false
			}
			cb, err := code.Encode(b)
			if err != nil {
				return false
			}
			ab, err := a.Xor(b)
			if err != nil {
				return false
			}
			cab, err := code.Encode(ab)
			if err != nil {
				return false
			}
			x, err := ca.Xor(cb)
			if err != nil {
				return false
			}
			return x.Equal(cab)
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
			t.Errorf("%s: linearity violated: %v", code.Name(), err)
		}
	}
}

// TestQuickSystematicProperty: data bits are recoverable from the codeword
// positions the layout promises (front for LinearCode, tail for BCH).
func TestQuickSystematicProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		lin := MustHamming7164()
		data := randomData(rng, lin.K())
		word, err := lin.Encode(data)
		if err != nil {
			return false
		}
		if !word.Slice(0, lin.K()).Equal(data) {
			return false
		}
		bch := MustBCH157()
		d2 := randomData(rng, bch.K())
		w2, err := bch.Encode(d2)
		if err != nil {
			return false
		}
		return w2.Slice(bch.N()-bch.K(), bch.N()).Equal(d2)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestQuickBERModelMonotone: every scheme's post-decoding BER is strictly
// increasing in the raw error probability over the working range.
func TestQuickBERModelMonotone(t *testing.T) {
	for _, code := range ExtendedSchemes() {
		code := code
		prop := func(aRaw, bRaw uint32) bool {
			// Map to (1e-9, 0.2) and order.
			toP := func(x uint32) float64 { return 1e-9 + float64(x%1000000)/1000000*0.2 }
			pa, pb := toP(aRaw), toP(bRaw)
			if pa == pb {
				return true
			}
			if pa > pb {
				pa, pb = pb, pa
			}
			return PostDecodeBER(code, pa) < PostDecodeBER(code, pb)
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
			t.Errorf("%s: BER model not monotone: %v", code.Name(), err)
		}
	}
}

// TestQuickCodewordWeightBounds: nonzero codewords of distance-d codes have
// weight >= d (spot-checked via random payload pairs and their difference).
func TestQuickCodewordWeightBounds(t *testing.T) {
	cases := []struct {
		code Code
		dMin int
	}{
		{MustHamming74(), 3},
		{MustHamming7164(), 3},
		{MustSECDED7264(), 4},
		{MustBCH157(), 5},
	}
	for _, c := range cases {
		c := c
		prop := func(seed int64) bool {
			rng := rand.New(rand.NewSource(seed))
			data := randomData(rng, c.code.K())
			if data.PopCount() == 0 {
				data.Set(0, 1)
			}
			word, err := c.code.Encode(data)
			if err != nil {
				return false
			}
			return word.PopCount() >= c.dMin
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
			t.Errorf("%s: weight bound %d violated: %v", c.code.Name(), c.dMin, err)
		}
	}
}

// TestQuickVectorGenerator keeps testing/quick exercising the bits.Vector
// plumbing through reflection-generated inputs.
func TestQuickVectorGenerator(t *testing.T) {
	prop := func(raw []byte) bool {
		v := bits.New(len(raw) * 8)
		for i, by := range raw {
			for b := 0; b < 8; b++ {
				v.Set(i*8+b, int(by>>b)&1)
			}
		}
		// Serialize through a string and back.
		back, err := bits.FromString(v.String())
		return err == nil && back.Equal(v)
	}
	cfg := &quick.Config{
		MaxCount: 100,
		Values: func(vs []reflect.Value, rng *rand.Rand) {
			raw := make([]byte, rng.Intn(32))
			rng.Read(raw)
			vs[0] = reflect.ValueOf(raw)
		},
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}
