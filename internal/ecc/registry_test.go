package ecc

import (
	"math/rand"
	"testing"

	"photonoc/internal/bits"
)

func TestPaperSchemesRoster(t *testing.T) {
	schemes := PaperSchemes()
	if len(schemes) != 3 {
		t.Fatalf("len = %d", len(schemes))
	}
	wantNames := []string{"w/o ECC", "H(71,64)", "H(7,4)"}
	wantCT := []float64{1, 71.0 / 64.0, 1.75}
	for i, c := range schemes {
		if c.Name() != wantNames[i] {
			t.Errorf("scheme %d = %q, want %q", i, c.Name(), wantNames[i])
		}
		if !approx(CT(c), wantCT[i], 1e-12) {
			t.Errorf("%s CT = %g, want %g", c.Name(), CT(c), wantCT[i])
		}
	}
}

func TestExtendedSchemesAllRoundTrip(t *testing.T) {
	// Generic contract test over every registered scheme: clean encode →
	// decode restores the payload; t ≥ 1 schemes repair any single error.
	rng := rand.New(rand.NewSource(31))
	for _, c := range ExtendedSchemes() {
		for trial := 0; trial < 50; trial++ {
			data := randomData(rng, c.K())
			word, err := c.Encode(data)
			if err != nil {
				t.Fatalf("%s: %v", c.Name(), err)
			}
			if word.Len() != c.N() {
				t.Fatalf("%s: wrong codeword length", c.Name())
			}
			got, info, err := c.Decode(word)
			if err != nil || !got.Equal(data) || info.Detected {
				t.Fatalf("%s: clean roundtrip failed (%+v, %v)", c.Name(), info, err)
			}
			if c.T() >= 1 {
				pos := rng.Intn(c.N())
				word.Flip(pos)
				got, _, err := c.Decode(word)
				if err != nil {
					t.Fatalf("%s: %v", c.Name(), err)
				}
				if !got.Equal(data) {
					t.Fatalf("%s: single error at %d not corrected", c.Name(), pos)
				}
			}
		}
	}
}

func TestSchemeByName(t *testing.T) {
	c, ok := SchemeByName("H(7,4)")
	if !ok || c.N() != 7 {
		t.Error("H(7,4) lookup failed")
	}
	if _, ok := SchemeByName("H(255,247)"); ok {
		t.Error("unknown scheme should not be found")
	}
}

func TestDescribeFormat(t *testing.T) {
	got := Describe(MustHamming74())
	want := "H(7,4): (n=7, k=4, t=1) rate=0.571 CT=1.750"
	if got != want {
		t.Errorf("Describe = %q, want %q", got, want)
	}
}

func TestRateOverheadConsistency(t *testing.T) {
	for _, c := range ExtendedSchemes() {
		if r, o := Rate(c), Overhead(c); !approx(r+o, 1, 1e-12) {
			t.Errorf("%s: rate %g + overhead %g != 1", c.Name(), r, o)
		}
		if ct := CT(c); !approx(ct*Rate(c), 1, 1e-12) {
			t.Errorf("%s: CT·rate != 1", c.Name())
		}
	}
}

func BenchmarkHamming74Encode(b *testing.B) {
	code := MustHamming74()
	rng := rand.New(rand.NewSource(1))
	data := randomData(rng, 4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := code.Encode(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHamming7164Encode(b *testing.B) {
	code := MustHamming7164()
	rng := rand.New(rand.NewSource(1))
	data := randomData(rng, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := code.Encode(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHamming7164DecodeWithError(b *testing.B) {
	code := MustHamming7164()
	rng := rand.New(rand.NewSource(1))
	data := randomData(rng, 64)
	word, err := code.Encode(data)
	if err != nil {
		b.Fatal(err)
	}
	word.Flip(17)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := code.Decode(word); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBCH157DecodeDoubleError(b *testing.B) {
	code := MustBCH157()
	rng := rand.New(rand.NewSource(1))
	data := randomData(rng, 7)
	word, err := code.Encode(data)
	if err != nil {
		b.Fatal(err)
	}
	word.Flip(3)
	word.Flip(11)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := code.Decode(word); err != nil {
			b.Fatal(err)
		}
	}
}

// randomDataBench avoids the unused warning for bits import in some builds.
var _ = bits.New
