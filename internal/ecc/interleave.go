package ecc

import (
	"fmt"

	"photonoc/internal/bits"
)

// Interleaver is a block (row/column) interleaver of the given depth:
// `depth` consecutive codewords are written as rows and transmitted column
// by column, so a burst of up to `depth` consecutive channel errors lands
// as at most one error per codeword — turning bursts (e.g. slow thermal
// transients on the optical link) into patterns a single-error corrector
// can repair.
type Interleaver struct {
	depth int
	width int // codeword length n
}

// NewInterleaver builds an interleaver for `depth` codewords of n bits.
func NewInterleaver(depth, width int) (*Interleaver, error) {
	if depth < 1 {
		return nil, fmt.Errorf("ecc: interleaver depth %d must be >= 1", depth)
	}
	if width < 1 {
		return nil, fmt.Errorf("ecc: interleaver width %d must be >= 1", width)
	}
	return &Interleaver{depth: depth, width: width}, nil
}

// Depth returns the number of codewords per interleaving block.
func (il *Interleaver) Depth() int { return il.depth }

// BlockBits returns the size of one interleaved block, depth × width.
func (il *Interleaver) BlockBits() int { return il.depth * il.width }

// Interleave merges exactly `depth` codewords into one column-major stream.
func (il *Interleaver) Interleave(words []bits.Vector) (bits.Vector, error) {
	if len(words) != il.depth {
		return bits.Vector{}, fmt.Errorf("ecc: interleaver needs %d words, got %d", il.depth, len(words))
	}
	for i, w := range words {
		if w.Len() != il.width {
			return bits.Vector{}, fmt.Errorf("ecc: word %d is %d bits, want %d", i, w.Len(), il.width)
		}
	}
	out := bits.New(il.BlockBits())
	pos := 0
	for col := 0; col < il.width; col++ {
		for row := 0; row < il.depth; row++ {
			out.Set(pos, words[row].Bit(col))
			pos++
		}
	}
	return out, nil
}

// Deinterleave splits a column-major stream back into `depth` codewords.
func (il *Interleaver) Deinterleave(stream bits.Vector) ([]bits.Vector, error) {
	if stream.Len() != il.BlockBits() {
		return nil, fmt.Errorf("ecc: stream is %d bits, want %d", stream.Len(), il.BlockBits())
	}
	words := make([]bits.Vector, il.depth)
	for row := range words {
		words[row] = bits.New(il.width)
	}
	pos := 0
	for col := 0; col < il.width; col++ {
		for row := 0; row < il.depth; row++ {
			words[row].Set(col, stream.Bit(pos))
			pos++
		}
	}
	return words, nil
}

// InterleavedCode wraps a block code with an interleaver, presenting the
// combination as a Code over depth·k data bits: a burst of up to
// depth·t consecutive channel errors per block is always corrected.
type InterleavedCode struct {
	inner Code
	il    *Interleaver
	name  string
	// innerLin is the inner code as a LinearCode when it is one; the
	// bit-sliced kernels specialize on it (the interleaver permutation is
	// then a pure re-indexing of sliced words — see sliced.go).
	innerLin *LinearCode
}

// NewInterleavedCode builds the composition.
func NewInterleavedCode(inner Code, depth int) (*InterleavedCode, error) {
	il, err := NewInterleaver(depth, inner.N())
	if err != nil {
		return nil, err
	}
	lin, _ := inner.(*LinearCode)
	return &InterleavedCode{
		inner:    inner,
		il:       il,
		name:     fmt.Sprintf("IL%dx%s", depth, inner.Name()),
		innerLin: lin,
	}, nil
}

// Name implements Code.
func (c *InterleavedCode) Name() string { return c.name }

// N implements Code.
func (c *InterleavedCode) N() int { return c.il.BlockBits() }

// K implements Code.
func (c *InterleavedCode) K() int { return c.il.Depth() * c.inner.K() }

// T implements Code: against *random* errors the guarantee is still the
// inner code's t (one badly-placed pair defeats it); the burst guarantee
// depth·t is what the interleaver actually buys and is exercised in tests.
func (c *InterleavedCode) T() int { return c.inner.T() }

// BurstTolerance returns the longest burst of consecutive errors the
// composition always corrects: depth · t of the inner code.
func (c *InterleavedCode) BurstTolerance() int { return c.il.Depth() * c.inner.T() }

// Encode implements Code.
func (c *InterleavedCode) Encode(data bits.Vector) (bits.Vector, error) {
	out := bits.New(c.N())
	if err := c.EncodeInto(out, data); err != nil {
		return bits.Vector{}, err
	}
	return out, nil
}

// EncodeInto implements InplaceCode. Unlike the single-block codes it keeps
// two inner-block scratch vectors per call (the interleaver permutation
// prevents encoding in place); only the output allocation is avoided.
func (c *InterleavedCode) EncodeInto(dst, data bits.Vector) error {
	if err := checkDataLen(c, data); err != nil {
		return err
	}
	if err := checkEncodeDst(c, dst); err != nil {
		return err
	}
	depth, width, k := c.il.Depth(), c.il.width, c.inner.K()
	blockData := bits.New(k)
	blockWord := bits.New(width)
	for row := 0; row < depth; row++ {
		data.SliceInto(blockData, row*k)
		if err := encodeIntoAny(c.inner, blockWord, blockData); err != nil {
			return err
		}
		for col := 0; col < width; col++ {
			dst.Set(col*depth+row, blockWord.Bit(col))
		}
	}
	return nil
}

// Decode implements Code.
func (c *InterleavedCode) Decode(stream bits.Vector) (bits.Vector, DecodeInfo, error) {
	out := bits.New(c.K())
	info, err := c.DecodeInto(out, stream)
	if err != nil {
		return bits.Vector{}, DecodeInfo{}, err
	}
	return out, info, nil
}

// DecodeInto implements InplaceCode, with the same two-scratch-vector caveat
// as EncodeInto.
func (c *InterleavedCode) DecodeInto(dst, stream bits.Vector) (DecodeInfo, error) {
	if err := checkWordLen(c, stream); err != nil {
		return DecodeInfo{}, err
	}
	if err := checkDecodeDst(c, dst); err != nil {
		return DecodeInfo{}, err
	}
	depth, width, k := c.il.Depth(), c.il.width, c.inner.K()
	blockWord := bits.New(width)
	blockData := bits.New(k)
	var agg DecodeInfo
	for row := 0; row < depth; row++ {
		for col := 0; col < width; col++ {
			blockWord.Set(col, stream.Bit(col*depth+row))
		}
		info, err := decodeIntoAny(c.inner, blockData, blockWord)
		if err != nil {
			return DecodeInfo{}, err
		}
		agg.Corrected += info.Corrected
		agg.Detected = agg.Detected || info.Detected
		blockData.CopyInto(dst, row*k)
	}
	return agg, nil
}
