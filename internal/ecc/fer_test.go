package ecc

import (
	"math"
	"math/rand"
	"testing"

	"photonoc/internal/bits"
	"photonoc/internal/mathx"
)

func TestFrameErrorRateKnownValues(t *testing.T) {
	// Uncoded n=64, t=0: FER = 1 − (1−p)^64.
	p := 1e-3
	got := FrameErrorRate(MustUncoded64(), p)
	want := 1 - math.Pow(1-p, 64)
	if !approx(got, want, 1e-12) {
		t.Errorf("uncoded FER = %g, want %g", got, want)
	}
	// H(7,4), t=1: FER = 1 − (1−p)^7 − 7p(1−p)^6.
	got = FrameErrorRate(MustHamming74(), p)
	want = 1 - math.Pow(1-p, 7) - 7*p*math.Pow(1-p, 6)
	if !approx(got, want, 1e-9) {
		t.Errorf("H(7,4) FER = %g, want %g", got, want)
	}
	// Boundaries.
	if FrameErrorRate(MustHamming74(), 0) != 0 || FrameErrorRate(MustHamming74(), 1) != 1 {
		t.Error("FER boundaries wrong")
	}
}

func TestFrameErrorRateMonotoneAndOrdered(t *testing.T) {
	// More correction → lower FER at the same channel quality.
	for _, p := range mathx.Logspace(1e-6, 1e-2, 10) {
		ferU := FrameErrorRate(MustUncoded64(), p)
		fer74 := FrameErrorRate(MustHamming74(), p)
		ferBCH := FrameErrorRate(MustBCH157(), p)
		if !(ferBCH < fer74 && fer74 < ferU) {
			t.Fatalf("p=%g: FER ordering wrong: %g, %g, %g", p, ferBCH, fer74, ferU)
		}
	}
	prev := 0.0
	for _, p := range mathx.Logspace(1e-8, 0.3, 50) {
		cur := FrameErrorRate(MustHamming7164(), p)
		if cur <= prev {
			t.Fatalf("FER not increasing at p=%g", p)
		}
		prev = cur
	}
}

func TestFrameErrorRateMatchesMonteCarlo(t *testing.T) {
	// Empirical frame failures at p = 0.02 over many H(7,4) words.
	code := MustHamming74()
	const p = 0.02
	rng := rand.New(rand.NewSource(91))
	fails := 0
	const words = 30000
	for w := 0; w < words; w++ {
		data := randomData(rng, code.K())
		word, err := code.Encode(data)
		if err != nil {
			t.Fatal(err)
		}
		bits.FlipRandom(word, rng, p)
		got, _, err := code.Decode(word)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(data) {
			fails++
		}
	}
	sim := float64(fails) / words
	want := FrameErrorRate(code, p)
	if sim < want*0.8 || sim > want*1.2 {
		t.Errorf("simulated FER %g vs analytic %g", sim, want)
	}
}

func TestRequiredRawBERForFERRoundTrip(t *testing.T) {
	for _, code := range PaperSchemes() {
		for _, target := range []float64{1e-9, 1e-6, 1e-3} {
			p, err := RequiredRawBERForFER(code, target)
			if err != nil {
				t.Fatalf("%s @ %g: %v", code.Name(), target, err)
			}
			back := FrameErrorRate(code, p)
			if !approx(back/target, 1, 1e-6) {
				t.Errorf("%s: FER roundtrip %g → %g", code.Name(), target, back)
			}
		}
	}
	if _, err := RequiredRawBERForFER(MustHamming74(), 0); err == nil {
		t.Error("FER 0 should be rejected")
	}
	if _, err := RequiredRawBERForFER(MustHamming74(), 1); err == nil {
		t.Error("FER 1 should be rejected")
	}
}

func TestExpectedWordsBetweenFailures(t *testing.T) {
	code := MustHamming7164()
	p := 1e-6
	mtbf := ExpectedWordsBetweenFailures(code, p)
	if !approx(mtbf*FrameErrorRate(code, p), 1, 1e-9) {
		t.Error("MTBF must be the reciprocal of FER")
	}
	if !math.IsInf(ExpectedWordsBetweenFailures(code, 0), 1) {
		t.Error("error-free channel should give infinite MTBF")
	}
}
