package ecc

import (
	"fmt"
	"math"

	"photonoc/internal/bits"
)

// Repetition repeats every data bit r times (r odd) and decodes by majority
// vote. It is the simplest — and least rate-efficient — baseline on the
// power/performance plane: t = (r−1)/2 per bit at rate 1/r.
type Repetition struct {
	k, r int
	name string
}

// NewRepetition builds a k-data-bit repetition code with odd factor r ≥ 3.
func NewRepetition(k, r int) (*Repetition, error) {
	if k <= 0 {
		return nil, fmt.Errorf("ecc: NewRepetition: need k > 0, got %d", k)
	}
	if r < 3 || r%2 == 0 {
		return nil, fmt.Errorf("ecc: NewRepetition: factor must be odd and >= 3, got %d", r)
	}
	return &Repetition{k: k, r: r, name: fmt.Sprintf("Rep(%dx%d)", k, r)}, nil
}

// Name implements Code.
func (c *Repetition) Name() string { return c.name }

// N implements Code.
func (c *Repetition) N() int { return c.k * c.r }

// K implements Code.
func (c *Repetition) K() int { return c.k }

// T implements Code: majority vote fixes up to (r−1)/2 flips per data bit.
func (c *Repetition) T() int { return (c.r - 1) / 2 }

// Encode implements Code: bit i occupies positions [i·r, (i+1)·r).
func (c *Repetition) Encode(data bits.Vector) (bits.Vector, error) {
	out := bits.New(c.N())
	if err := c.EncodeInto(out, data); err != nil {
		return bits.Vector{}, err
	}
	return out, nil
}

// EncodeInto implements InplaceCode without allocating.
func (c *Repetition) EncodeInto(dst, data bits.Vector) error {
	if err := checkDataLen(c, data); err != nil {
		return err
	}
	if err := checkEncodeDst(c, dst); err != nil {
		return err
	}
	for i := 0; i < c.k; i++ {
		b := data.Bit(i)
		for j := 0; j < c.r; j++ {
			dst.Set(i*c.r+j, b)
		}
	}
	return nil
}

// Decode implements Code by per-bit majority vote.
func (c *Repetition) Decode(word bits.Vector) (bits.Vector, DecodeInfo, error) {
	data := bits.New(c.k)
	info, err := c.DecodeInto(data, word)
	if err != nil {
		return bits.Vector{}, DecodeInfo{}, err
	}
	return data, info, nil
}

// DecodeInto implements InplaceCode: the majority vote without allocating.
func (c *Repetition) DecodeInto(dst, word bits.Vector) (DecodeInfo, error) {
	if err := checkWordLen(c, word); err != nil {
		return DecodeInfo{}, err
	}
	if err := checkDecodeDst(c, dst); err != nil {
		return DecodeInfo{}, err
	}
	info := DecodeInfo{}
	for i := 0; i < c.k; i++ {
		ones := 0
		for j := 0; j < c.r; j++ {
			ones += word.Bit(i*c.r + j)
		}
		bit := 0
		if 2*ones > c.r {
			bit = 1
		}
		dst.Set(i, bit)
		// Minority copies are the corrections the majority vote implied.
		if bit == 1 {
			info.Corrected += c.r - ones
		} else {
			info.Corrected += ones
		}
	}
	return info, nil
}

// PostDecodeBER implements BERModeler with the exact majority-vote error
// probability: P(more than r/2 of r copies flip) at raw flip probability p.
func (c *Repetition) PostDecodeBER(p float64) float64 {
	var sum float64
	for i := c.r/2 + 1; i <= c.r; i++ {
		sum += binomialTerm(c.r, i, p)
	}
	return math.Min(sum, 1)
}

// postDecodeBERAndDeriv implements berDerivModeler. The value duplicates
// PostDecodeBER term for term (bit-identical); the derivative is the
// binomial-tail identity d/dp P(X ≥ m) = r·C(r−1, m−1)·p^(m−1)·(1−p)^(r−m)
// with m = r/2 + 1.
func (c *Repetition) postDecodeBERAndDeriv(p float64) (float64, float64) {
	var sum float64
	for i := c.r/2 + 1; i <= c.r; i++ {
		sum += binomialTerm(c.r, i, p)
	}
	ber := math.Min(sum, 1)
	if p <= 0 || p >= 1 {
		return ber, 0
	}
	m := c.r/2 + 1
	deriv := float64(c.r) * math.Exp(lchoose(c.r-1, m-1)+
		float64(m-1)*math.Log(p)+float64(c.r-m)*math.Log1p(-p))
	return ber, deriv
}
