package ecc

import (
	"fmt"

	"photonoc/internal/bits"
)

// Uncoded is the identity "code": data is transmitted as-is. It models the
// paper's w/o-ECC communication scheme (CT = 1, no coding gain).
type Uncoded struct {
	k int
}

// NewUncoded returns the k-bit pass-through scheme.
func NewUncoded(k int) (*Uncoded, error) {
	if k <= 0 {
		return nil, fmt.Errorf("ecc: NewUncoded(%d): need k > 0", k)
	}
	return &Uncoded{k: k}, nil
}

// MustUncoded64 returns the 64-bit uncoded scheme matching the paper's
// interface width.
func MustUncoded64() *Uncoded {
	c, err := NewUncoded(64)
	if err != nil {
		panic(err) // fixed parameters: cannot fail
	}
	return c
}

// Name implements Code.
func (c *Uncoded) Name() string { return "w/o ECC" }

// N implements Code.
func (c *Uncoded) N() int { return c.k }

// K implements Code.
func (c *Uncoded) K() int { return c.k }

// T implements Code.
func (c *Uncoded) T() int { return 0 }

// Encode implements Code (identity).
func (c *Uncoded) Encode(data bits.Vector) (bits.Vector, error) {
	if err := checkDataLen(c, data); err != nil {
		return bits.Vector{}, err
	}
	return data.Clone(), nil
}

// EncodeInto implements InplaceCode (identity copy).
func (c *Uncoded) EncodeInto(dst, data bits.Vector) error {
	if err := checkDataLen(c, data); err != nil {
		return err
	}
	if err := checkEncodeDst(c, dst); err != nil {
		return err
	}
	data.CopyInto(dst, 0)
	return nil
}

// Decode implements Code (identity; nothing can be detected).
func (c *Uncoded) Decode(word bits.Vector) (bits.Vector, DecodeInfo, error) {
	if err := checkWordLen(c, word); err != nil {
		return bits.Vector{}, DecodeInfo{}, err
	}
	return word.Clone(), DecodeInfo{}, nil
}

// DecodeInto implements InplaceCode (identity copy).
func (c *Uncoded) DecodeInto(dst, word bits.Vector) (DecodeInfo, error) {
	if err := checkWordLen(c, word); err != nil {
		return DecodeInfo{}, err
	}
	if err := checkDecodeDst(c, dst); err != nil {
		return DecodeInfo{}, err
	}
	word.CopyInto(dst, 0)
	return DecodeInfo{}, nil
}

// PostDecodeBER implements BERModeler: without coding the channel error
// probability passes straight through.
func (c *Uncoded) PostDecodeBER(p float64) float64 { return p }

// postDecodeBERAndDeriv implements berDerivModeler: dBER/dp = 1.
func (c *Uncoded) postDecodeBERAndDeriv(p float64) (float64, float64) { return p, 1 }
