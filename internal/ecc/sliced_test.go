package ecc

import (
	"fmt"
	"math/rand"
	"testing"

	"photonoc/internal/bits"
	"photonoc/internal/gf2"
)

// slicedTestCodes returns every scheme with a bit-sliced kernel: the
// registry roster plus an interleaved composition (the registry itself has
// none).
func slicedTestCodes(t *testing.T) []Code {
	t.Helper()
	il, err := NewInterleavedCode(MustHamming74(), 4)
	if err != nil {
		t.Fatal(err)
	}
	// A repetition factor above 255 regression-tests the carry-save counter
	// sizing in DecodeSliced (width = Len(r) bits, not a fixed cap).
	bigRep, err := NewRepetition(2, 257)
	if err != nil {
		t.Fatal(err)
	}
	return append(ExtendedSchemes(), il, bigRep)
}

// transposeToSliced packs frame f's vector bits into bit f of each sliced
// word.
func transposeToSliced(frames []bits.Vector, n int) []uint64 {
	out := make([]uint64, n)
	for f, v := range frames {
		for i := 0; i < n; i++ {
			out[i] |= uint64(v.Bit(i)) << uint(f)
		}
	}
	return out
}

// transposeFromSliced extracts frame f from the sliced words.
func transposeFromSliced(sliced []uint64, n, f int) bits.Vector {
	v := bits.New(n)
	for i := 0; i < n; i++ {
		v.Set(i, int(sliced[i]>>uint(f))&1)
	}
	return v
}

// TestSlicedKernelsMatchScalar is the frame-exactness property test: for
// every sliced code, 64 random frames pushed through
// EncodeSliced → random corruption → DecodeSliced must reproduce, bit for
// bit and flag for flag, what Encode → Decode does on each frame
// individually.
func TestSlicedKernelsMatchScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(20260727))
	for _, code := range slicedTestCodes(t) {
		code := code
		t.Run(code.Name(), func(t *testing.T) {
			sl, ok := AsSlicer(code)
			if !ok {
				t.Skipf("%s has no sliced kernel", code.Name())
			}
			k, n := code.K(), code.N()
			for trial := 0; trial < 20; trial++ {
				frames := make([]bits.Vector, SlicedWidth)
				for f := range frames {
					frames[f] = bits.New(k)
					frames[f].FillRandom(rng)
				}
				data := transposeToSliced(frames, k)

				// Encode both ways and compare codewords.
				word := make([]uint64, n)
				sl.EncodeSliced(word, data)
				scalarWords := make([]bits.Vector, SlicedWidth)
				for f := range frames {
					w, err := code.Encode(frames[f])
					if err != nil {
						t.Fatal(err)
					}
					scalarWords[f] = w
					if got := transposeFromSliced(word, n, f); !got.Equal(w) {
						t.Fatalf("frame %d: sliced codeword %s != scalar %s", f, got, w)
					}
				}

				// Corrupt: a mix of clean frames, single, double and heavier
				// patterns, identically in both domains.
				for f := range scalarWords {
					weight := trial * f % 4
					if weight > 0 {
						positions, err := bits.FlipExactly(scalarWords[f], rng, weight)
						if err != nil {
							t.Fatal(err)
						}
						for _, pos := range positions {
							word[pos] ^= 1 << uint(f)
						}
					}
				}

				// Decode both ways and compare data, per-frame flags and the
				// aggregate correction count.
				out := make([]uint64, k)
				info := sl.DecodeSliced(out, word)
				totalCorrected := 0
				for f := range scalarWords {
					dec, di, err := code.Decode(scalarWords[f])
					if err != nil {
						t.Fatal(err)
					}
					totalCorrected += di.Corrected
					if got := transposeFromSliced(out, k, f); !got.Equal(dec) {
						t.Fatalf("frame %d: sliced decode %s != scalar %s", f, got, dec)
					}
					if got := info.Detected>>uint(f)&1 == 1; got != di.Detected {
						t.Fatalf("frame %d: sliced detected=%v, scalar=%v", f, got, di.Detected)
					}
				}
				if info.Corrected != totalCorrected {
					t.Fatalf("sliced corrected %d != scalar total %d", info.Corrected, totalCorrected)
				}
			}
		})
	}
}

// linearTestCodes collects the LinearCode instances behind the registry
// (including SECDED's inner) plus a 24-parity-bit construction that exceeds
// the dense-table limit and exercises the map fallback.
func linearTestCodes(t *testing.T) map[string]*LinearCode {
	t.Helper()
	secdedInner, err := NewShortenedHamming(7, 56)
	if err != nil {
		t.Fatal(err)
	}
	parity, err := NewParity(64)
	if err != nil {
		t.Fatal(err)
	}
	// A t=1 code with 24 parity bits: row i of P is the weight-2 pattern
	// {i, i+1}, giving distinct non-unit syndromes. r=24 > denseSynBits, so
	// it exercises the map fallback.
	p := gf2.NewMatrix(8, 24)
	for i := 0; i < 8; i++ {
		p.Set(i, i, 1)
		p.Set(i, i+1, 1)
	}
	wide, err := NewLinear("wide-r24", p, 1)
	if err != nil {
		t.Fatal(err)
	}
	if wide.synTable != nil {
		t.Fatalf("r=24 code unexpectedly built a dense table")
	}
	return map[string]*LinearCode{
		"H(7,4)":       MustHamming74(),
		"H(71,64)":     MustHamming7164(),
		"SECDED-inner": secdedInner,
		"Parity(65)":   parity,
		"wide-r24":     wide,
	}
}

// TestDenseSyndromeTableMatchesMap is the satellite property test: over all
// registry linear codes and every error pattern of weight ≤ 2 on a random
// codeword, the dense []int32 syndrome lookup must agree entry for entry
// with the historical map, and the full decode must be identical under both.
func TestDenseSyndromeTableMatchesMap(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for name, code := range linearTestCodes(t) {
		code := code
		t.Run(name, func(t *testing.T) {
			if code.t == 1 && code.r <= denseSynBits && code.synTable == nil {
				t.Fatalf("t=1 code with r=%d did not build a dense table", code.r)
			}
			n := code.N()
			data := bits.New(code.K())
			data.FillRandom(rng)
			clean, err := code.Encode(data)
			if err != nil {
				t.Fatal(err)
			}
			check := func(desc string, word bits.Vector) {
				t.Helper()
				syn, err := code.Syndrome(word)
				if err != nil {
					t.Fatal(err)
				}
				if syn != 0 && code.t == 1 {
					posDense, okDense := code.synLookup(syn)
					posMap, okMap := code.synLookupMap(syn)
					if okDense != okMap || (okDense && posDense != posMap) {
						t.Fatalf("%s: syndrome %#x dense (%d,%v) != map (%d,%v)",
							desc, syn, posDense, okDense, posMap, okMap)
					}
				}
				decDense, infoDense, err := code.Decode(word)
				if err != nil {
					t.Fatal(err)
				}
				// Reference decode through the map only.
				decMap, infoMap := code.decodeViaMap(word)
				if !decDense.Equal(decMap) || infoDense != infoMap {
					t.Fatalf("%s: dense decode (%s,%+v) != map decode (%s,%+v)",
						desc, decDense, infoDense, decMap, infoMap)
				}
			}
			check("clean", clean)
			for i := 0; i < n; i++ {
				w := clean.Clone()
				w.Flip(i)
				check(fmt.Sprintf("single@%d", i), w)
				for j := i + 1; j < n; j++ {
					w2 := clean.Clone()
					w2.Flip(i)
					w2.Flip(j)
					check(fmt.Sprintf("double@%d,%d", i, j), w2)
				}
			}
		})
	}
}

// decodeViaMap mirrors DecodeInto but resolves syndromes through the map
// lookup only — the reference arm of the dense-vs-map property test.
func (c *LinearCode) decodeViaMap(word bits.Vector) (bits.Vector, DecodeInfo) {
	syn := c.syndromeOf(word)
	out := word.Slice(0, c.k)
	if syn == 0 {
		return out, DecodeInfo{}
	}
	if c.t == 0 {
		return out, DecodeInfo{Detected: true}
	}
	pos, known := c.synLookupMap(syn)
	if !known {
		return out, DecodeInfo{Detected: true}
	}
	if pos < c.k {
		out.Flip(pos)
	}
	return out, DecodeInfo{Corrected: 1}
}

// TestInplaceSeamsMatchAllocating checks EncodeInto/DecodeInto against
// Encode/Decode for every registry code plus the interleaved composition,
// over random words with random low-weight corruption.
func TestInplaceSeamsMatchAllocating(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, code := range slicedTestCodes(t) {
		code := code
		t.Run(code.Name(), func(t *testing.T) {
			ic, ok := code.(InplaceCode)
			if !ok {
				t.Fatalf("%s does not implement InplaceCode", code.Name())
			}
			data := bits.New(code.K())
			word := bits.New(code.N())
			out := bits.New(code.K())
			for trial := 0; trial < 50; trial++ {
				data.FillRandom(rng)
				ref, err := code.Encode(data)
				if err != nil {
					t.Fatal(err)
				}
				if err := ic.EncodeInto(word, data); err != nil {
					t.Fatal(err)
				}
				if !word.Equal(ref) {
					t.Fatalf("EncodeInto %s != Encode %s", word, ref)
				}
				if _, err := bits.FlipExactly(word, rng, trial%4); err != nil {
					t.Fatal(err)
				}
				refDec, refInfo, err := code.Decode(word)
				if err != nil {
					t.Fatal(err)
				}
				info, err := ic.DecodeInto(out, word)
				if err != nil {
					t.Fatal(err)
				}
				if !out.Equal(refDec) || info != refInfo {
					t.Fatalf("DecodeInto (%s,%+v) != Decode (%s,%+v)", out, info, refDec, refInfo)
				}
			}
		})
	}
}

// TestInplaceSeamsOnBCH covers the scalar-only decoder's seams, including
// patterns beyond t that exercise the detected path and the algebraic
// miscorrection guard.
func TestInplaceSeamsOnBCH(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, code := range []*BCH{MustBCH157(), MustBCH3121()} {
		data := bits.New(code.K())
		word := bits.New(code.N())
		out := bits.New(code.K())
		for trial := 0; trial < 200; trial++ {
			data.FillRandom(rng)
			ref, err := code.Encode(data)
			if err != nil {
				t.Fatal(err)
			}
			if err := code.EncodeInto(word, data); err != nil {
				t.Fatal(err)
			}
			if !word.Equal(ref) {
				t.Fatalf("%s: EncodeInto mismatch", code.Name())
			}
			if _, err := bits.FlipExactly(word, rng, trial%5); err != nil {
				t.Fatal(err)
			}
			refDec, refInfo, err := code.Decode(word)
			if err != nil {
				t.Fatal(err)
			}
			info, err := code.DecodeInto(out, word)
			if err != nil {
				t.Fatal(err)
			}
			if !out.Equal(refDec) || info != refInfo {
				t.Fatalf("%s: DecodeInto (%+v) != Decode (%+v)", code.Name(), info, refInfo)
			}
		}
	}
}
