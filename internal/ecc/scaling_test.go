package ecc

import (
	"fmt"
	"math/rand"
	"testing"
)

// TestHammingScalesToLargeBlocks exercises the construction and the packed
// encode/decode machinery well beyond the paper's sizes, up to the
// H(4095,4083) code (m=12), including multi-word parity masks.
func TestHammingScalesToLargeBlocks(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for _, m := range []int{8, 10, 12} {
		code, err := NewHamming(m)
		if err != nil {
			t.Fatalf("m=%d: %v", m, err)
		}
		wantN := 1<<m - 1
		if code.N() != wantN || code.K() != wantN-m {
			t.Fatalf("m=%d dims wrong: %s", m, Describe(code))
		}
		data := randomData(rng, code.K())
		word, err := code.Encode(data)
		if err != nil {
			t.Fatal(err)
		}
		// Clean roundtrip.
		got, info, err := code.Decode(word)
		if err != nil || !got.Equal(data) || info.Detected {
			t.Fatalf("m=%d: clean roundtrip failed", m)
		}
		// Random single-error corrections across the big block.
		for trial := 0; trial < 25; trial++ {
			w := word.Clone()
			pos := rng.Intn(code.N())
			w.Flip(pos)
			got, info, err := code.Decode(w)
			if err != nil {
				t.Fatal(err)
			}
			if !got.Equal(data) || info.Corrected != 1 {
				t.Fatalf("m=%d: error at %d not corrected", m, pos)
			}
		}
	}
}

// TestShortenedHammingScaling checks shortening at scale: H(4095,4083)
// shortened down to a 1024-bit payload still corrects single errors.
func TestShortenedHammingScaling(t *testing.T) {
	code, err := NewShortenedHamming(12, 4083-1024)
	if err != nil {
		t.Fatal(err)
	}
	if code.K() != 1024 || code.N() != 1036 {
		t.Fatalf("dims: %s", Describe(code))
	}
	rng := rand.New(rand.NewSource(102))
	data := randomData(rng, 1024)
	word, err := code.Encode(data)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 30; trial++ {
		w := word.Clone()
		pos := rng.Intn(code.N())
		w.Flip(pos)
		got, _, err := code.Decode(w)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(data) {
			t.Fatalf("error at %d not corrected", pos)
		}
	}
}

// BenchmarkHammingEncodeScaling reports encode throughput across code sizes
// — the packed-mask hot loop from H(7,4) to H(4095,4083).
func BenchmarkHammingEncodeScaling(b *testing.B) {
	rng := rand.New(rand.NewSource(103))
	for _, m := range []int{3, 7, 10, 12} {
		code, err := NewHamming(m)
		if err != nil {
			b.Fatal(err)
		}
		data := randomData(rng, code.K())
		b.Run(fmt.Sprintf("m=%d_k=%d", m, code.K()), func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(code.K() / 8))
			for i := 0; i < b.N; i++ {
				if _, err := code.Encode(data); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
