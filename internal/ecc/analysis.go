package ecc

import (
	"fmt"
	"math"

	"photonoc/internal/mathx"
)

// SNRForRawBER inverts paper Eq. 3: the SNR at which the raw (pre-decoding)
// bit error probability equals ber, i.e. SNR = [erfc⁻¹(2·ber)]².
//
// Note on Eq. 1: the paper prints SNR = [erfc⁻¹(1−2·BER)]², which is this
// same relation expressed through erf⁻¹ (erfc⁻¹(1−y) = erf⁻¹(y)) with the
// function name mis-typeset; taken literally it would give SNR → 0 as
// BER → 0. We implement the physically meaningful form.
func SNRForRawBER(ber float64) (float64, error) {
	if !(ber > 0 && ber <= 0.5) {
		return 0, fmt.Errorf("ecc: raw BER %g outside (0, 0.5]", ber)
	}
	x := mathx.ErfcInv(2 * ber)
	return x * x, nil
}

// RawBERFromSNR is paper Eq. 3: p = ½·erfc(√SNR).
func RawBERFromSNR(snr float64) float64 {
	if snr < 0 {
		return 0.5
	}
	return 0.5 * mathx.Erfc(math.Sqrt(snr))
}

// PaperHammingBER is paper Eq. 2: the post-decoding BER of a single-error-
// correcting block code of length n at raw bit error probability p,
// BER = p − p·(1−p)^(n−1).
func PaperHammingBER(n int, p float64) float64 {
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return 1
	}
	return p - p*math.Pow(1-p, float64(n-1))
}

// UnionBoundBER is the standard post-decoding bit-error model for a
// t-error-correcting (n, k) block code:
//
//	BER ≈ (1/n) · Σ_{i=t+1}^{n} (i + t) · C(n, i) · p^i · (1−p)^(n−i)
//
// (each uncorrectable weight-i pattern leaves about i+t wrong bits after a
// bounded-distance decoder misfires). Used for the BCH extensions.
func UnionBoundBER(n, t int, p float64) float64 {
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return 1
	}
	var sum float64
	for i := t + 1; i <= n; i++ {
		sum += float64(i+t) * binomialTerm(n, i, p)
	}
	return math.Min(sum/float64(n), 1)
}

// binomialTerm returns C(n, i)·p^i·(1−p)^(n−i), computed in log space so
// large n and tiny p do not underflow prematurely.
func binomialTerm(n, i int, p float64) float64 {
	lg := lchoose(n, i) + float64(i)*math.Log(p) + float64(n-i)*math.Log1p(-p)
	return math.Exp(lg)
}

// lchoose returns ln C(n, k) via log-gamma.
func lchoose(n, k int) float64 {
	a, _ := math.Lgamma(float64(n + 1))
	b, _ := math.Lgamma(float64(k + 1))
	c, _ := math.Lgamma(float64(n - k + 1))
	return a - b - c
}

// PostDecodeBER returns the post-decoding BER of code c at raw bit error
// probability p. Codes that implement BERModeler (repetition, uncoded) are
// consulted first; otherwise t = 0 codes pass p through, t = 1 codes use the
// paper's Eq. 2, and stronger codes use the union-bound model.
//
// Deprecated: callers evaluating the same code repeatedly should hold the
// memoized plan from PlanFor(c) and call FERPlan.PostDecodeBER, which skips
// the per-call plan lookup and evaluates the union-bound tail by incremental
// recurrence (agreement within 1e-12 relative; exact for BERModeler, t = 0
// and t = 1 codes). This wrapper remains fully supported.
func PostDecodeBER(c Code, p float64) float64 {
	return PlanFor(c).PostDecodeBER(p)
}

// RequiredRawBER inverts PostDecodeBER: the raw channel bit error
// probability that yields the target post-decoding BER under code c.
//
// Deprecated: use PlanFor(c).RequiredRawBER, which reuses the code's
// compiled plan across calls. This wrapper remains fully supported; the
// Newton-based planned inversion agrees with the historical bisection to
// better than 1e-12 relative.
func RequiredRawBER(c Code, target float64) (float64, error) {
	return PlanFor(c).RequiredRawBER(target)
}

// RequiredSNR composes the two inversions: the channel SNR needed so the
// post-decoding BER under code c reaches target.
func RequiredSNR(c Code, target float64) (float64, error) {
	p, err := RequiredRawBER(c, target)
	if err != nil {
		return 0, err
	}
	return SNRForRawBER(p)
}

// CodingGainDB returns the SNR advantage (in dB) of code c over uncoded
// transmission at the same target BER.
func CodingGainDB(c Code, target float64) (float64, error) {
	snrCoded, err := RequiredSNR(c, target)
	if err != nil {
		return 0, err
	}
	snrUncoded, err := SNRForRawBER(target)
	if err != nil {
		return 0, err
	}
	return mathx.DB(snrUncoded / snrCoded), nil
}
