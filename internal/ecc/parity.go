package ecc

import (
	"fmt"

	"photonoc/internal/gf2"
)

// NewParity builds the (k+1, k) single-parity-check code: it detects any
// single (odd-weight) error but corrects nothing (t = 0). Useful as the
// cheapest detection-only point on the trade-off plane.
func NewParity(k int) (*LinearCode, error) {
	if k <= 0 {
		return nil, fmt.Errorf("ecc: NewParity(%d): need k > 0", k)
	}
	p := gf2.NewMatrix(k, 1)
	for i := 0; i < k; i++ {
		p.Set(i, 0, 1)
	}
	c, err := NewLinear(fmt.Sprintf("Parity(%d,%d)", k+1, k), p, 0)
	if err != nil {
		return nil, err
	}
	return c, nil
}
