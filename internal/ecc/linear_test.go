package ecc

import (
	"testing"

	"photonoc/internal/bits"
	"photonoc/internal/gf2"
)

func TestNewLinearValidation(t *testing.T) {
	// Parity footprint collision: two data rows with the same pattern
	// cannot be single-error-correcting.
	p := gf2.NewMatrix(2, 3)
	p.Set(0, 0, 1)
	p.Set(0, 1, 1)
	p.Set(1, 0, 1)
	p.Set(1, 1, 1)
	if _, err := NewLinear("bad", p, 1); err == nil {
		t.Error("duplicate syndromes should be rejected")
	}

	// A data row equal to a unit vector collides with a parity position.
	p2 := gf2.NewMatrix(1, 3)
	p2.Set(0, 0, 1)
	if _, err := NewLinear("bad2", p2, 1); err == nil {
		t.Error("unit-vector data footprint should be rejected for t=1")
	}

	// Empty footprint means the data bit is unprotected.
	p3 := gf2.NewMatrix(2, 3)
	p3.Set(0, 0, 1)
	p3.Set(0, 1, 1)
	if _, err := NewLinear("bad3", p3, 1); err == nil {
		t.Error("empty parity footprint should be rejected for t=1")
	}

	// Out-of-range t.
	p4 := gf2.NewMatrix(2, 2)
	if _, err := NewLinear("bad4", p4, 2); err == nil {
		t.Error("t=2 should be rejected by NewLinear")
	}

	// Too many parity bits for the packed syndrome.
	p5 := gf2.NewMatrix(2, 64)
	if _, err := NewLinear("bad5", p5, 0); err == nil {
		t.Error("r > 63 should be rejected")
	}
}

func TestLinearCodeSizeErrors(t *testing.T) {
	code := MustHamming74()
	if _, err := code.Encode(bits.New(5)); err == nil {
		t.Error("wrong data size should error")
	}
	if _, _, err := code.Decode(bits.New(8)); err == nil {
		t.Error("wrong word size should error")
	}
	if _, err := code.Syndrome(bits.New(6)); err == nil {
		t.Error("wrong word size should error in Syndrome")
	}
}

func TestParityCodeDetectsOddErrors(t *testing.T) {
	code, err := NewParity(8)
	if err != nil {
		t.Fatal(err)
	}
	if code.N() != 9 || code.K() != 8 || code.T() != 0 {
		t.Fatalf("parity dims: %s", Describe(code))
	}
	data := bits.FromUint(0b10110010, 8)
	word, err := code.Encode(data)
	if err != nil {
		t.Fatal(err)
	}
	// Clean decode.
	got, info, err := code.Decode(word)
	if err != nil || !got.Equal(data) || info.Detected {
		t.Fatalf("clean parity decode failed: %+v %v", info, err)
	}
	// Any single error is detected (not corrected).
	for pos := 0; pos < code.N(); pos++ {
		w := word.Clone()
		w.Flip(pos)
		_, info, err := code.Decode(w)
		if err != nil {
			t.Fatal(err)
		}
		if !info.Detected || info.Corrected != 0 {
			t.Errorf("single error at %d: info %+v, want Detected", pos, info)
		}
	}
	// Even-weight errors slip through undetected (inherent limitation).
	w := word.Clone()
	w.Flip(0)
	w.Flip(1)
	_, info, err = code.Decode(w)
	if err != nil {
		t.Fatal(err)
	}
	if info.Detected {
		t.Error("double error unexpectedly detected by single parity")
	}

	if _, err := NewParity(0); err == nil {
		t.Error("NewParity(0) should fail")
	}
}

func TestParityMaskMatchesGenerator(t *testing.T) {
	// The packed parity masks must agree with the P block of G.
	code := MustHamming7164()
	g := code.Generator()
	k := code.K()
	for j := 0; j < code.N()-k; j++ {
		mask := code.ParityMask(j)
		for i := 0; i < k; i++ {
			bit := int(mask[i>>6]>>(uint(i)&63)) & 1
			if bit != g.At(i, k+j) {
				t.Fatalf("mask[%d] bit %d = %d, G says %d", j, i, bit, g.At(i, k+j))
			}
		}
	}
}
