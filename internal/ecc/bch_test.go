package ecc

import (
	"math/rand"
	"testing"

	"photonoc/internal/bits"
	"photonoc/internal/gf2"
)

func TestBCH157Construction(t *testing.T) {
	code := MustBCH157()
	if code.N() != 15 || code.K() != 7 || code.T() != 2 {
		t.Fatalf("BCH(15,7) dims wrong: %s", Describe(code))
	}
	// The textbook generator for BCH(15,7,t=2) over x^4+x+1 is
	// g(x) = x^8 + x^7 + x^6 + x^4 + 1.
	if got := code.Generator(); got != gf2.BinPoly(0b111010001) {
		t.Errorf("generator = %s", got)
	}
}

func TestBCH3121Construction(t *testing.T) {
	code := MustBCH3121()
	if code.N() != 31 || code.K() != 21 || code.T() != 2 {
		t.Fatalf("BCH(31,21) dims wrong: %s", Describe(code))
	}
	if code.Generator().Degree() != 10 {
		t.Errorf("generator degree = %d, want 10", code.Generator().Degree())
	}
}

func TestNewBCHValidation(t *testing.T) {
	if _, err := NewBCH(4, 0); err == nil {
		t.Error("t=0 should fail")
	}
	if _, err := NewBCH(4, 8); err == nil {
		t.Error("2t >= n should fail")
	}
	if _, err := NewBCH(1, 1); err == nil {
		t.Error("m=1 should fail (no field)")
	}
	// The extreme designed distance still leaves k=1 (all four conjugacy
	// classes below α^15 total degree 14) and must construct fine.
	c, err := NewBCH(4, 5)
	if err != nil {
		t.Fatalf("NewBCH(4,5): %v", err)
	}
	if c.K() != 1 {
		t.Errorf("BCH(15,·,t=5) k = %d, want 1", c.K())
	}
}

func TestBCHCodewordsDivisibleByGenerator(t *testing.T) {
	// Property: every codeword, as a polynomial, is divisible by g(x).
	rng := rand.New(rand.NewSource(13))
	code := MustBCH157()
	for trial := 0; trial < 100; trial++ {
		word, err := code.Encode(randomData(rng, code.K()))
		if err != nil {
			t.Fatal(err)
		}
		if rem := code.polyMod(word); rem != 0 {
			t.Fatalf("codeword remainder %b != 0", rem)
		}
	}
}

func TestBCHRoundTripClean(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for _, code := range []*BCH{MustBCH157(), MustBCH3121()} {
		for trial := 0; trial < 100; trial++ {
			data := randomData(rng, code.K())
			word, err := code.Encode(data)
			if err != nil {
				t.Fatal(err)
			}
			got, info, err := code.Decode(word)
			if err != nil {
				t.Fatal(err)
			}
			if !got.Equal(data) || info.Corrected != 0 || info.Detected {
				t.Fatalf("%s: clean decode failed (info %+v)", code.Name(), info)
			}
		}
	}
}

func TestBCH157CorrectsAllSingleAndDoubleErrors(t *testing.T) {
	// Exhaustive: all 15 single and all 105 double error patterns.
	rng := rand.New(rand.NewSource(15))
	code := MustBCH157()
	data := randomData(rng, code.K())
	clean, err := code.Encode(data)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < code.N(); i++ {
		w := clean.Clone()
		w.Flip(i)
		got, info, err := code.Decode(w)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(data) || info.Corrected != 1 {
			t.Fatalf("single error at %d not corrected (info %+v)", i, info)
		}
		for j := i + 1; j < code.N(); j++ {
			w2 := clean.Clone()
			w2.Flip(i)
			w2.Flip(j)
			got, info, err := code.Decode(w2)
			if err != nil {
				t.Fatal(err)
			}
			if !got.Equal(data) || info.Corrected != 2 {
				t.Fatalf("double error (%d,%d) not corrected (info %+v)", i, j, info)
			}
		}
	}
}

func TestBCH3121CorrectsRandomDoubleErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	code := MustBCH3121()
	for trial := 0; trial < 500; trial++ {
		data := randomData(rng, code.K())
		word, err := code.Encode(data)
		if err != nil {
			t.Fatal(err)
		}
		k := trial%2 + 1 // alternate single and double errors
		if _, err := bits.FlipExactly(word, rng, k); err != nil {
			t.Fatal(err)
		}
		got, info, err := code.Decode(word)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(data) || info.Corrected != k {
			t.Fatalf("%d errors not corrected (info %+v)", k, info)
		}
	}
}

func TestBCHTripleErrorsNeverSilentlyRestore(t *testing.T) {
	// With 3 > t errors the decoder must either flag detection or
	// miscorrect to a *different* codeword; silently returning the
	// original payload would mean d_min > 5, contradicting t=2.
	rng := rand.New(rand.NewSource(17))
	code := MustBCH157()
	detected := 0
	for trial := 0; trial < 500; trial++ {
		data := randomData(rng, code.K())
		word, err := code.Encode(data)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := bits.FlipExactly(word, rng, 3); err != nil {
			t.Fatal(err)
		}
		got, info, err := code.Decode(word)
		if err != nil {
			t.Fatal(err)
		}
		if info.Detected {
			detected++
			continue
		}
		if got.Equal(data) {
			t.Fatal("triple error silently restored the original payload")
		}
	}
	if detected == 0 {
		t.Error("no triple-error pattern was ever flagged Detected")
	}
}

func TestBCHSizeErrors(t *testing.T) {
	code := MustBCH157()
	if _, err := code.Encode(bits.New(8)); err == nil {
		t.Error("wrong data size should error")
	}
	if _, _, err := code.Decode(bits.New(14)); err == nil {
		t.Error("wrong word size should error")
	}
}
