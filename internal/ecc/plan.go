package ecc

import (
	"fmt"
	"math"
	"sync"

	"photonoc/internal/mathx"
)

// berDerivModeler is implemented by codes that know the analytic derivative
// of their exact post-decoding BER alongside its value. The planned Newton
// inversion consults it; BERModeler codes without it fall back to the
// derivative-free monotone solve.
type berDerivModeler interface {
	BERModeler
	// postDecodeBERAndDeriv returns PostDecodeBER(p) (bit-identical to the
	// BERModeler method) and dBER/dp at the same point.
	postDecodeBERAndDeriv(p float64) (ber, dBERdP float64)
}

// planKey identifies a code for plan memoization: the display name plus the
// (n, k, t) parameters. Two codes sharing all four are interchangeable for
// every analytic model in this package.
type planKey struct {
	name    string
	n, k, t int
}

// planRegistryCap bounds the memoized-plan map so a service exploring an
// unbounded code-parameter space cannot grow it forever; compiling is cheap
// enough that flushing a full registry beats tracking recency.
const planRegistryCap = 256

// planRegistry memoizes compiled FER plans process-wide (planKey → *FERPlan).
// Plans are immutable after construction, so sharing across goroutines is
// free; a racing duplicate compile just wastes a few microseconds once.
var planRegistry struct {
	sync.RWMutex
	m map[planKey]*FERPlan
}

// FERPlan is the precomputed evaluation plan for one code's analytic error
// models: the log-domain binomial coefficients ln C(n, i), the derivative
// anchor ln C(n−1, t), and the model dispatch resolved once instead of per
// call. A plan turns FrameErrorRate into a t-term loop with no Lgamma calls,
// evaluates the union-bound tail by an incremental recurrence, and inverts
// both models with bisection-guarded Newton iterations using the analytic
// d lnBER / d lnp — the cold-solve hot path of the link configurator.
//
// Obtain plans through PlanFor; the zero value is not usable.
type FERPlan struct {
	code Code
	n, t int

	// lnC[i] = ln C(n, i) for i in [0, n].
	lnC []float64
	// lnCPrev = ln C(n−1, t): d/dp P(X ≤ t) = −n·C(n−1,t)·p^t·(1−p)^(n−1−t).
	lnCPrev float64

	// Post-decoding model dispatch, resolved at compile time. Exactly one
	// of deriv/opaque is non-nil for BERModeler codes; both nil means the
	// generic t-indexed models apply.
	deriv  berDerivModeler
	opaque BERModeler
}

// PlanFor returns the memoized FER plan for code c, compiling it on first
// use. Plans are keyed by code identity (name and (n, k, t)), so distinct
// instances of the same code share one plan.
func PlanFor(c Code) *FERPlan {
	key := planKey{name: c.Name(), n: c.N(), k: c.K(), t: c.T()}
	planRegistry.RLock()
	p, ok := planRegistry.m[key]
	planRegistry.RUnlock()
	if ok {
		return p
	}
	p = compilePlan(c)
	planRegistry.Lock()
	if cached, ok := planRegistry.m[key]; ok {
		p = cached // a racing compile won; share its plan
	} else {
		if planRegistry.m == nil || len(planRegistry.m) >= planRegistryCap {
			planRegistry.m = make(map[planKey]*FERPlan, planRegistryCap)
		}
		planRegistry.m[key] = p
	}
	planRegistry.Unlock()
	return p
}

// compilePlan builds the plan: one pass of log-gamma per binomial row.
func compilePlan(c Code) *FERPlan {
	n, t := c.N(), c.T()
	p := &FERPlan{code: c, n: n, t: t, lnC: make([]float64, n+1)}
	for i := 0; i <= n; i++ {
		p.lnC[i] = lchoose(n, i)
	}
	if t <= n-1 {
		p.lnCPrev = lchoose(n-1, t)
	}
	switch m := c.(type) {
	case berDerivModeler:
		p.deriv = m
	case BERModeler:
		p.opaque = m
	}
	return p
}

// Code returns the code the plan was compiled for.
func (p *FERPlan) Code() Code { return p.code }

// FrameErrorRate is the planned form of the package-level FrameErrorRate:
// P(more than t errors in n bits) at raw bit error probability pe, computed
// from the small side with the cached ln C(n, i) row — bit-identical to the
// unplanned sum, minus the per-term log-gamma evaluations.
func (p *FERPlan) FrameErrorRate(pe float64) float64 {
	if pe <= 0 {
		return 0
	}
	if pe >= 1 {
		return 1
	}
	lnP, ln1mP := math.Log(pe), math.Log1p(-pe)
	var ok float64
	for i := 0; i <= p.t; i++ {
		ok += math.Exp(p.lnC[i] + float64(i)*lnP + float64(p.n-i)*ln1mP)
	}
	return math.Min(math.Max(1-ok, 0), 1)
}

// ferTailDeriv evaluates the frame error rate by its direct binomial tail,
//
//	P(X > t) = Σ_{i=t+1}^{n} C(n, i)·p^i·(1−p)^(n−i),
//
// via the incremental term recurrence b_{i+1} = b_i·(n−i)/(i+1)·p/q, along
// with the analytic log-log slope d lnFER / d lnp from the binomial-CDF
// identity d/dp P(X > t) = n·C(n−1, t)·p^t·(1−p)^(n−1−t).
//
// Unlike the 1 − Σ_head formulation of FrameErrorRate (kept bit-compatible
// with the historical helper), the direct tail stays accurate to a few ulp
// even where the head sum cancels catastrophically (FER ≪ 1e-10), which is
// exactly where the Newton inversion needs a well-conditioned function.
func (p *FERPlan) ferTailDeriv(pe float64) (fer, dLnFERdLnP float64) {
	if pe <= 0 {
		return 0, 0
	}
	if pe >= 1 {
		return 1, 0
	}
	n, t := p.n, p.t
	lnP, ln1mP := math.Log(pe), math.Log1p(-pe)
	q := 1 - pe
	ratio := pe / q

	i0 := t + 1
	term := math.Exp(p.lnC[i0] + float64(i0)*lnP + float64(n-i0)*ln1mP)
	sum := term
	for i := i0; i < n; i++ {
		term *= float64(n-i) / float64(i+1) * ratio
		if term == 0 {
			break // underflow: every later term is smaller still
		}
		sum += term
	}
	fer = math.Min(sum, 1)
	if fer <= 0 || fer >= 1 {
		return fer, 0
	}
	dFdP := math.Exp(math.Log(float64(n)) + p.lnCPrev + float64(t)*lnP + float64(n-1-t)*ln1mP)
	return fer, pe * dFdP / fer
}

// PostDecodeBER is the planned form of the package-level PostDecodeBER:
// exact BERModeler expressions first, then pass-through (t = 0), the paper's
// Eq. 2 (t = 1), or the union bound (t ≥ 2) with its tail evaluated by the
// incremental term recurrence.
func (p *FERPlan) PostDecodeBER(pe float64) float64 {
	if p.deriv != nil {
		return p.deriv.PostDecodeBER(pe)
	}
	if p.opaque != nil {
		return p.opaque.PostDecodeBER(pe)
	}
	switch {
	case p.t == 0:
		return pe
	case p.t == 1:
		return PaperHammingBER(p.n, pe)
	default:
		ber, _ := p.unionTail(pe)
		return ber
	}
}

// unionTail evaluates the union-bound post-decoding BER
//
//	(1/n) · Σ_{i=t+1}^{n} (i + t) · C(n, i) · p^i · (1−p)^(n−i)
//
// and its derivative dBER/dp in one pass. Only the first term pays an Exp;
// successive binomial terms follow from b_{i+1} = b_i · (n−i)/(i+1) · p/q,
// and each term's derivative is b_i · (i/p − (n−i)/q).
func (p *FERPlan) unionTail(pe float64) (ber, dBERdP float64) {
	if pe <= 0 {
		return 0, 0
	}
	if pe >= 1 {
		return 1, 0
	}
	n, t := p.n, p.t
	lnP, ln1mP := math.Log(pe), math.Log1p(-pe)
	q := 1 - pe
	ratio := pe / q

	i0 := t + 1
	term := math.Exp(p.lnC[i0] + float64(i0)*lnP + float64(n-i0)*ln1mP)
	sum := float64(i0+t) * term
	dsum := float64(i0+t) * term * (float64(i0)/pe - float64(n-i0)/q)
	for i := i0; i < n; i++ {
		term *= float64(n-i) / float64(i+1) * ratio
		if term == 0 {
			break // underflow: every later term is smaller still
		}
		w := float64(i + 1 + t)
		sum += w * term
		dsum += w * term * (float64(i+1)/pe - float64(n-i-1)/q)
	}
	nf := float64(n)
	if sum/nf >= 1 {
		return 1, 0
	}
	return sum / nf, dsum / nf
}

// postDecodeBERDeriv returns PostDecodeBER(pe) together with the log-log
// slope d lnBER / d lnp, and reports whether the derivative is available
// (opaque BERModeler codes only supply the value).
func (p *FERPlan) postDecodeBERDeriv(pe float64) (ber, dLnBdLnP float64, ok bool) {
	switch {
	case p.deriv != nil:
		b, d := p.deriv.postDecodeBERAndDeriv(pe)
		if b <= 0 {
			return b, 0, true
		}
		return b, pe * d / b, true
	case p.opaque != nil:
		return p.opaque.PostDecodeBER(pe), 0, false
	case p.t == 0:
		return pe, 1, true
	case p.t == 1:
		// Eq. 2: B = p − p(1−p)^(n−1) = p·(1 − q^(n−1)).
		q := 1 - pe
		qn1 := math.Pow(q, float64(p.n-1))
		b := pe - pe*qn1
		if b <= 0 {
			return b, 0, true
		}
		// dB/dp = (1 − q^(n−1)) + p(n−1)q^(n−2).
		dBdP := (1 - qn1) + pe*float64(p.n-1)*math.Pow(q, float64(p.n-2))
		return b, pe * dBdP / b, true
	default:
		b, dBdP := p.unionTail(pe)
		if b <= 0 || b >= 1 {
			return b, 0, true
		}
		return b, pe * dBdP / b, true
	}
}

// Search bracket shared by both planned inversions, matching the unplanned
// solvers: ln p over [1e-18, 0.4999].
var (
	lnPLo = math.Log(1e-18)
	lnPHi = math.Log(0.4999)
)

// newtonTol is the ln-p convergence tolerance of the planned inversions —
// tighter than the 1e-12 of the legacy bisection so that planned and legacy
// roots agree to well under 1e-12 relative.
const newtonTol = 1e-13

// RequiredRawBER inverts PostDecodeBER with bisection-guarded Newton
// iterations on ln p: the raw channel bit error probability at which the
// post-decoding BER equals target.
func (p *FERPlan) RequiredRawBER(target float64) (float64, error) {
	if !(target > 0 && target < 0.5) {
		return 0, fmt.Errorf("ecc: target BER %g outside (0, 0.5)", target)
	}
	if p.opaque != nil {
		// Opaque BERModeler: no derivative available, use the legacy
		// derivative-free monotone solve.
		f := func(lnP float64) float64 {
			post := p.PostDecodeBER(math.Exp(lnP))
			if post <= 0 {
				return math.Inf(-1)
			}
			return math.Log(post)
		}
		lnP, err := mathx.SolveMonotone(f, math.Log(target), lnPLo, lnPHi, 1e-12)
		if err != nil {
			return 0, fmt.Errorf("ecc: %s: inverting BER %g: %w", p.code.Name(), target, err)
		}
		return math.Exp(lnP), nil
	}
	lnT := math.Log(target)
	fd := func(lnP float64) (float64, float64) {
		ber, d, _ := p.postDecodeBERDeriv(math.Exp(lnP))
		if ber <= 0 {
			return math.Inf(-1), 0
		}
		return math.Log(ber) - lnT, d
	}
	lnP, err := mathx.NewtonBisect(fd, lnPLo, lnPHi, newtonTol)
	if err != nil {
		return 0, fmt.Errorf("ecc: %s: inverting BER %g: %w", p.code.Name(), target, err)
	}
	return math.Exp(lnP), nil
}

// RequiredRawBERForFER inverts the frame error rate with bisection-guarded
// Newton iterations on ln p: the raw channel bit error probability at which
// the code's FER equals target.
//
// The solve runs on the direct binomial-tail evaluation (see ferTailDeriv),
// which stays well-conditioned at deep targets where the historical
// 1 − Σ_head formulation only defines the FER to ≈2e-16/target relative;
// within that intrinsic roundoff band the returned root is the accurate one.
func (p *FERPlan) RequiredRawBERForFER(target float64) (float64, error) {
	if !(target > 0 && target < 1) {
		return 0, fmt.Errorf("ecc: target FER %g outside (0, 1)", target)
	}
	lnT := math.Log(target)
	fd := func(lnP float64) (float64, float64) {
		fer, d := p.ferTailDeriv(math.Exp(lnP))
		if fer <= 0 {
			return math.Inf(-1), 0
		}
		return math.Log(fer) - lnT, d
	}
	lnP, err := mathx.NewtonBisect(fd, lnPLo, lnPHi, newtonTol)
	if err != nil {
		return 0, fmt.Errorf("ecc: %s: inverting FER %g: %w", p.code.Name(), target, err)
	}
	return math.Exp(lnP), nil
}

// ExpectedWordsBetweenFailures is the planned MTBF-style metric: the mean
// number of codewords between decoder failures at raw bit error probability
// pe.
func (p *FERPlan) ExpectedWordsBetweenFailures(pe float64) float64 {
	fer := p.FrameErrorRate(pe)
	if fer <= 0 {
		return math.Inf(1)
	}
	return 1 / fer
}
