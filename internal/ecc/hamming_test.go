package ecc

import (
	"math/rand"
	"testing"

	"photonoc/internal/bits"
)

func randomData(rng *rand.Rand, k int) bits.Vector {
	v := bits.New(k)
	for i := 0; i < k; i++ {
		v.Set(i, rng.Intn(2))
	}
	return v
}

func TestHammingParameters(t *testing.T) {
	cases := []struct {
		m, n, k int
	}{
		{2, 3, 1},
		{3, 7, 4},
		{4, 15, 11},
		{5, 31, 26},
		{6, 63, 57},
		{7, 127, 120},
	}
	for _, c := range cases {
		code, err := NewHamming(c.m)
		if err != nil {
			t.Fatalf("NewHamming(%d): %v", c.m, err)
		}
		if code.N() != c.n || code.K() != c.k || code.T() != 1 {
			t.Errorf("m=%d: (n,k,t) = (%d,%d,%d), want (%d,%d,1)", c.m, code.N(), code.K(), code.T(), c.n, c.k)
		}
	}
	if _, err := NewHamming(1); err == nil {
		t.Error("m=1 should fail")
	}
	if _, err := NewHamming(16); err == nil {
		t.Error("m=16 should fail")
	}
}

func TestPaperCodes(t *testing.T) {
	h74 := MustHamming74()
	if h74.N() != 7 || h74.K() != 4 || h74.Name() != "H(7,4)" {
		t.Errorf("H(7,4) wrong: %s", Describe(h74))
	}
	if ct := CT(h74); !approx(ct, 1.75, 1e-12) {
		t.Errorf("H(7,4) CT = %g, want 1.75 (the paper's +75%% parity)", ct)
	}
	h7164 := MustHamming7164()
	if h7164.N() != 71 || h7164.K() != 64 || h7164.Name() != "H(71,64)" {
		t.Errorf("H(71,64) wrong: %s", Describe(h7164))
	}
	if ct := CT(h7164); !approx(ct, 71.0/64.0, 1e-12) {
		t.Errorf("H(71,64) CT = %g, want %g", ct, 71.0/64.0)
	}
}

func TestGeneratorParityCheckOrthogonality(t *testing.T) {
	for _, m := range []int{3, 4, 5, 7} {
		code, err := NewHamming(m)
		if err != nil {
			t.Fatal(err)
		}
		prod, err := code.Generator().Mul(code.ParityCheck().Transpose())
		if err != nil {
			t.Fatal(err)
		}
		if !prod.IsZero() {
			t.Errorf("m=%d: G·Hᵀ != 0", m)
		}
	}
}

func TestHammingRoundTripClean(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, code := range []Code{MustHamming74(), MustHamming7164()} {
		for trial := 0; trial < 200; trial++ {
			data := randomData(rng, code.K())
			word, err := code.Encode(data)
			if err != nil {
				t.Fatal(err)
			}
			if word.Len() != code.N() {
				t.Fatalf("%s: codeword length %d", code.Name(), word.Len())
			}
			got, info, err := code.Decode(word)
			if err != nil {
				t.Fatal(err)
			}
			if !got.Equal(data) || info.Corrected != 0 || info.Detected {
				t.Fatalf("%s: clean decode failed (info %+v)", code.Name(), info)
			}
		}
	}
}

func TestHammingCorrectsEverySingleError(t *testing.T) {
	// Exhaustive over all error positions for both paper codes and a
	// mid-size code, with random payloads.
	rng := rand.New(rand.NewSource(2))
	codes := []Code{MustHamming74(), MustHamming7164()}
	if h15, err := NewHamming(4); err == nil {
		codes = append(codes, h15)
	}
	for _, code := range codes {
		for pos := 0; pos < code.N(); pos++ {
			data := randomData(rng, code.K())
			word, err := code.Encode(data)
			if err != nil {
				t.Fatal(err)
			}
			word.Flip(pos)
			got, info, err := code.Decode(word)
			if err != nil {
				t.Fatal(err)
			}
			if !got.Equal(data) {
				t.Fatalf("%s: error at %d not corrected", code.Name(), pos)
			}
			if info.Corrected != 1 || info.Detected {
				t.Fatalf("%s: error at %d: info %+v", code.Name(), pos, info)
			}
		}
	}
}

func TestHamming74MinimumDistance(t *testing.T) {
	// Exhaustive: every nonzero codeword of H(7,4) has weight >= 3
	// (d_min = 3 is what makes it single-error-correcting).
	code := MustHamming74()
	minW := code.N()
	for v := 1; v < 1<<4; v++ {
		data := bits.FromUint(uint64(v), 4)
		word, err := code.Encode(data)
		if err != nil {
			t.Fatal(err)
		}
		if w := word.PopCount(); w < minW {
			minW = w
		}
	}
	if minW != 3 {
		t.Errorf("H(7,4) minimum distance = %d, want 3", minW)
	}
}

func TestHammingDoubleErrorNeverSilentlyCorrect(t *testing.T) {
	// A distance-3 code cannot repair two errors: the decoder must either
	// flag detection (possible for the shortened code) or miscorrect to a
	// *different* payload. It must never return the original data while
	// claiming a clean/corrected decode with the wrong correction count.
	rng := rand.New(rand.NewSource(3))
	for _, code := range []Code{MustHamming74(), MustHamming7164()} {
		for trial := 0; trial < 300; trial++ {
			data := randomData(rng, code.K())
			word, err := code.Encode(data)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := bits.FlipExactly(word, rng, 2); err != nil {
				t.Fatal(err)
			}
			got, info, err := code.Decode(word)
			if err != nil {
				t.Fatal(err)
			}
			if info.Detected {
				continue // detected uncorrectable: fine
			}
			if got.Equal(data) {
				t.Fatalf("%s: double error decoded back to the original payload", code.Name())
			}
		}
	}
}

func TestShortenedHammingValidation(t *testing.T) {
	if _, err := NewShortenedHamming(7, 120); err == nil {
		t.Error("shortening away all data bits should fail")
	}
	if _, err := NewShortenedHamming(7, -1); err == nil {
		t.Error("negative shortening should fail")
	}
	// Shortening by 0 equals the full code.
	a, err := NewShortenedHamming(3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if a.N() != 7 || a.K() != 4 {
		t.Errorf("unshortened (m=3): (%d,%d)", a.N(), a.K())
	}
}

func TestShortenedHammingDetectsForeignSyndromes(t *testing.T) {
	// For H(71,64) some double-error syndromes correspond to columns that
	// were removed by shortening; those must surface as Detected at least
	// once across many trials.
	code := MustHamming7164()
	rng := rand.New(rand.NewSource(4))
	detected := 0
	for trial := 0; trial < 2000; trial++ {
		data := randomData(rng, code.K())
		word, _ := code.Encode(data)
		if _, err := bits.FlipExactly(word, rng, 2); err != nil {
			t.Fatal(err)
		}
		_, info, err := code.Decode(word)
		if err != nil {
			t.Fatal(err)
		}
		if info.Detected {
			detected++
		}
	}
	if detected == 0 {
		t.Error("shortened code never reported a detected-uncorrectable pattern over 2000 double errors")
	}
}

func approx(a, b, tol float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	m := a
	if b > m {
		m = b
	}
	if m < 1 {
		return d <= tol
	}
	return d <= tol*m
}
