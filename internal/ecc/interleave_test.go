package ecc

import (
	"math/rand"
	"testing"
	"testing/quick"

	"photonoc/internal/bits"
)

func TestInterleaverRoundTrip(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		depth := rng.Intn(8) + 1
		width := rng.Intn(30) + 1
		il, err := NewInterleaver(depth, width)
		if err != nil {
			return false
		}
		words := make([]bits.Vector, depth)
		for i := range words {
			words[i] = randomData(rng, width)
		}
		stream, err := il.Interleave(words)
		if err != nil {
			return false
		}
		back, err := il.Deinterleave(stream)
		if err != nil {
			return false
		}
		for i := range words {
			if !back[i].Equal(words[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestInterleaverSpreadsBursts(t *testing.T) {
	// The defining property: a burst of `depth` consecutive stream errors
	// touches each codeword at most once.
	il, err := NewInterleaver(4, 7)
	if err != nil {
		t.Fatal(err)
	}
	words := make([]bits.Vector, 4)
	for i := range words {
		words[i] = bits.New(7)
	}
	stream, err := il.Interleave(words)
	if err != nil {
		t.Fatal(err)
	}
	if err := bits.BurstError(stream, 5, 4); err != nil {
		t.Fatal(err)
	}
	back, err := il.Deinterleave(stream)
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range back {
		if w.PopCount() > 1 {
			t.Errorf("codeword %d received %d burst errors, want <= 1", i, w.PopCount())
		}
	}
}

func TestInterleaverValidation(t *testing.T) {
	if _, err := NewInterleaver(0, 7); err == nil {
		t.Error("depth 0 should fail")
	}
	if _, err := NewInterleaver(4, 0); err == nil {
		t.Error("width 0 should fail")
	}
	il, _ := NewInterleaver(2, 7)
	if _, err := il.Interleave([]bits.Vector{bits.New(7)}); err == nil {
		t.Error("wrong word count should fail")
	}
	if _, err := il.Interleave([]bits.Vector{bits.New(7), bits.New(6)}); err == nil {
		t.Error("wrong word size should fail")
	}
	if _, err := il.Deinterleave(bits.New(13)); err == nil {
		t.Error("wrong stream size should fail")
	}
}

func TestInterleavedCodeCorrectsBursts(t *testing.T) {
	// IL8×H(7,4): any burst of up to 8 consecutive stream errors is
	// always corrected (one error per inner codeword). Exhaustive over
	// every burst start position.
	inner := MustHamming74()
	code, err := NewInterleavedCode(inner, 8)
	if err != nil {
		t.Fatal(err)
	}
	if code.K() != 32 || code.N() != 56 || code.BurstTolerance() != 8 {
		t.Fatalf("composition dims wrong: %s k=%d n=%d", code.Name(), code.K(), code.N())
	}
	rng := rand.New(rand.NewSource(81))
	data := randomData(rng, code.K())
	clean, err := code.Encode(data)
	if err != nil {
		t.Fatal(err)
	}
	for start := 0; start < code.N(); start++ {
		stream := clean.Clone()
		if err := bits.BurstError(stream, start, 8); err != nil {
			t.Fatal(err)
		}
		got, info, err := code.Decode(stream)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(data) {
			t.Fatalf("burst at %d not corrected", start)
		}
		if info.Corrected == 0 {
			t.Fatalf("burst at %d: decoder claims no corrections", start)
		}
	}
}

func TestBareCodeFailsOnBursts(t *testing.T) {
	// Control experiment: without interleaving, an 8-bit burst lands
	// inside at most two H(7,4) codewords and must corrupt the payload
	// for at least some positions.
	inner := MustHamming74()
	rng := rand.New(rand.NewSource(82))
	failures := 0
	for trial := 0; trial < 50; trial++ {
		// Concatenate 8 codewords without interleaving.
		var words []bits.Vector
		var datas []bits.Vector
		for i := 0; i < 8; i++ {
			d := randomData(rng, 4)
			datas = append(datas, d)
			w, err := inner.Encode(d)
			if err != nil {
				t.Fatal(err)
			}
			words = append(words, w)
		}
		stream := bits.New(0)
		for _, w := range words {
			stream = stream.Concat(w)
		}
		if err := bits.BurstError(stream, rng.Intn(stream.Len()), 8); err != nil {
			t.Fatal(err)
		}
		ok := true
		for i := 0; i < 8; i++ {
			got, _, err := inner.Decode(stream.Slice(i*7, (i+1)*7))
			if err != nil {
				t.Fatal(err)
			}
			if !got.Equal(datas[i]) {
				ok = false
			}
		}
		if !ok {
			failures++
		}
	}
	if failures == 0 {
		t.Error("8-bit bursts never defeated the bare code — control experiment broken")
	}
}

func TestInterleavedCodeCleanRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	code, err := NewInterleavedCode(MustHamming7164(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if code.K() != 256 || code.N() != 284 {
		t.Fatalf("dims: k=%d n=%d", code.K(), code.N())
	}
	for trial := 0; trial < 50; trial++ {
		data := randomData(rng, code.K())
		word, err := code.Encode(data)
		if err != nil {
			t.Fatal(err)
		}
		got, info, err := code.Decode(word)
		if err != nil || !got.Equal(data) || info.Corrected != 0 || info.Detected {
			t.Fatal("clean roundtrip failed")
		}
	}
}

func TestInterleavedCodeRateUnchanged(t *testing.T) {
	inner := MustHamming74()
	code, err := NewInterleavedCode(inner, 16)
	if err != nil {
		t.Fatal(err)
	}
	if Rate(code) != Rate(inner) || CT(code) != CT(inner) {
		t.Error("interleaving must not change the code rate or CT")
	}
}
