package ecc

import (
	"fmt"

	"photonoc/internal/bits"
)

// ExtendedHamming is a Hamming code extended with one overall parity bit,
// giving minimum distance 4: it corrects single errors and *detects* double
// errors (SECDED), the organization used for ECC memory interfaces.
type ExtendedHamming struct {
	inner *LinearCode
	name  string
}

// NewExtendedHamming wraps the (possibly shortened) m-bit Hamming code
// shortened by s into its SECDED extension.
func NewExtendedHamming(m, s int) (*ExtendedHamming, error) {
	inner, err := NewShortenedHamming(m, s)
	if err != nil {
		return nil, err
	}
	return &ExtendedHamming{
		inner: inner,
		name:  fmt.Sprintf("SECDED(%d,%d)", inner.N()+1, inner.K()),
	}, nil
}

// MustSECDED7264 returns the classic SECDED(72,64) organization
// (H(71,64) plus an overall parity bit).
func MustSECDED7264() *ExtendedHamming {
	c, err := NewExtendedHamming(7, 56)
	if err != nil {
		panic(err) // fixed parameters: cannot fail
	}
	return c
}

// Name implements Code.
func (c *ExtendedHamming) Name() string { return c.name }

// N implements Code.
func (c *ExtendedHamming) N() int { return c.inner.N() + 1 }

// K implements Code.
func (c *ExtendedHamming) K() int { return c.inner.K() }

// T implements Code.
func (c *ExtendedHamming) T() int { return 1 }

// Encode implements Code: inner codeword plus an overall even-parity bit.
func (c *ExtendedHamming) Encode(data bits.Vector) (bits.Vector, error) {
	word, err := c.inner.Encode(data)
	if err != nil {
		return bits.Vector{}, err
	}
	out := bits.New(c.N())
	word.CopyInto(out, 0)
	out.Set(c.N()-1, word.PopCount()&1)
	return out, nil
}

// Decode implements Code with the standard SECDED case analysis:
//
//	syndrome == 0, parity ok   → clean word
//	syndrome == 0, parity bad  → the overall parity bit itself flipped
//	syndrome != 0, parity bad  → single error, corrected by lookup
//	syndrome != 0, parity ok   → double error, detected-uncorrectable
func (c *ExtendedHamming) Decode(word bits.Vector) (bits.Vector, DecodeInfo, error) {
	if err := checkWordLen(c, word); err != nil {
		return bits.Vector{}, DecodeInfo{}, err
	}
	innerWord := word.Slice(0, c.inner.N())
	syn, err := c.inner.Syndrome(innerWord)
	if err != nil {
		return bits.Vector{}, DecodeInfo{}, err
	}
	parityBad := word.PopCount()&1 == 1

	switch {
	case syn == 0 && !parityBad:
		return innerWord.Slice(0, c.K()), DecodeInfo{}, nil
	case syn == 0 && parityBad:
		// Only the appended parity bit is wrong; the data is intact.
		return innerWord.Slice(0, c.K()), DecodeInfo{Corrected: 1}, nil
	case parityBad:
		pos, known := c.inner.synDecode[syn]
		if !known {
			return innerWord.Slice(0, c.K()), DecodeInfo{Detected: true}, nil
		}
		fixed := innerWord.Clone()
		fixed.Flip(pos)
		return fixed.Slice(0, c.K()), DecodeInfo{Corrected: 1}, nil
	default:
		// Nonzero syndrome with good overall parity: an even number of
		// errors. Uncorrectable by design.
		return innerWord.Slice(0, c.K()), DecodeInfo{Detected: true}, nil
	}
}
