package ecc

import (
	"fmt"

	"photonoc/internal/bits"
)

// ExtendedHamming is a Hamming code extended with one overall parity bit,
// giving minimum distance 4: it corrects single errors and *detects* double
// errors (SECDED), the organization used for ECC memory interfaces.
type ExtendedHamming struct {
	inner *LinearCode
	name  string
}

// NewExtendedHamming wraps the (possibly shortened) m-bit Hamming code
// shortened by s into its SECDED extension.
func NewExtendedHamming(m, s int) (*ExtendedHamming, error) {
	inner, err := NewShortenedHamming(m, s)
	if err != nil {
		return nil, err
	}
	return &ExtendedHamming{
		inner: inner,
		name:  fmt.Sprintf("SECDED(%d,%d)", inner.N()+1, inner.K()),
	}, nil
}

// MustSECDED7264 returns the classic SECDED(72,64) organization
// (H(71,64) plus an overall parity bit).
func MustSECDED7264() *ExtendedHamming {
	c, err := NewExtendedHamming(7, 56)
	if err != nil {
		panic(err) // fixed parameters: cannot fail
	}
	return c
}

// Name implements Code.
func (c *ExtendedHamming) Name() string { return c.name }

// N implements Code.
func (c *ExtendedHamming) N() int { return c.inner.N() + 1 }

// K implements Code.
func (c *ExtendedHamming) K() int { return c.inner.K() }

// T implements Code.
func (c *ExtendedHamming) T() int { return 1 }

// Encode implements Code: inner codeword plus an overall even-parity bit.
func (c *ExtendedHamming) Encode(data bits.Vector) (bits.Vector, error) {
	out := bits.New(c.N())
	if err := c.EncodeInto(out, data); err != nil {
		return bits.Vector{}, err
	}
	return out, nil
}

// EncodeInto implements InplaceCode without allocating: the inner systematic
// layout is written directly into dst and the overall parity accumulated
// alongside the inner parity bits.
func (c *ExtendedHamming) EncodeInto(dst, data bits.Vector) error {
	if err := checkDataLen(c, data); err != nil {
		return err
	}
	if err := checkEncodeDst(c, dst); err != nil {
		return err
	}
	data.CopyInto(dst, 0)
	overall := data.PopCount()
	for j, mask := range c.inner.parityMasks {
		b := data.AndMaskParity(mask)
		dst.Set(c.inner.k+j, b)
		overall += b
	}
	dst.Set(c.N()-1, overall&1)
	return nil
}

// Decode implements Code with the standard SECDED case analysis:
//
//	syndrome == 0, parity ok   → clean word
//	syndrome == 0, parity bad  → the overall parity bit itself flipped
//	syndrome != 0, parity bad  → single error, corrected by lookup
//	syndrome != 0, parity ok   → double error, detected-uncorrectable
func (c *ExtendedHamming) Decode(word bits.Vector) (bits.Vector, DecodeInfo, error) {
	out := bits.New(c.K())
	info, err := c.DecodeInto(out, word)
	if err != nil {
		return bits.Vector{}, DecodeInfo{}, err
	}
	return out, info, nil
}

// DecodeInto implements InplaceCode: Decode's SECDED case analysis without
// allocating. The inner syndrome is evaluated directly on the extended word
// (the parity masks read only the data prefix, and the inner parity bits sit
// at their inner positions).
func (c *ExtendedHamming) DecodeInto(dst, word bits.Vector) (DecodeInfo, error) {
	if err := checkWordLen(c, word); err != nil {
		return DecodeInfo{}, err
	}
	if err := checkDecodeDst(c, dst); err != nil {
		return DecodeInfo{}, err
	}
	syn := c.inner.syndromeOf(word)
	parityBad := word.PopCount()&1 == 1
	word.SliceInto(dst, 0)

	switch {
	case syn == 0 && !parityBad:
		return DecodeInfo{}, nil
	case syn == 0 && parityBad:
		// Only the appended parity bit is wrong; the data is intact.
		return DecodeInfo{Corrected: 1}, nil
	case parityBad:
		pos, known := c.inner.synLookup(syn)
		if !known {
			return DecodeInfo{Detected: true}, nil
		}
		if pos < c.K() {
			dst.Flip(pos)
		}
		return DecodeInfo{Corrected: 1}, nil
	default:
		// Nonzero syndrome with good overall parity: an even number of
		// errors. Uncorrectable by design.
		return DecodeInfo{Detected: true}, nil
	}
}
