package netsim

import (
	"context"
	"math"
	"reflect"
	"testing"

	"photonoc/internal/core"
	"photonoc/internal/ecc"
	"photonoc/internal/manager"
	"photonoc/internal/noc"
)

// buildNetwork compiles a topology over the paper configuration and solves
// its per-link decisions sequentially — the engine-free reference path the
// simulator tests run on.
func buildNetwork(t *testing.T, kind noc.Kind, tiles int, ber float64) (*noc.Network, []noc.LinkDecision, noc.EvalOptions) {
	t.Helper()
	net, err := noc.Build(noc.Config{Kind: kind, Tiles: tiles, Base: core.DefaultConfig()})
	if err != nil {
		t.Fatal(err)
	}
	schemes := ecc.PaperSchemes()
	evals := make([][]core.Evaluation, net.NumLinks())
	for i, l := range net.Links() {
		evals[i] = make([]core.Evaluation, len(schemes))
		for s, code := range schemes {
			ev, err := l.Config.Evaluate(code, ber)
			if err != nil {
				t.Fatal(err)
			}
			evals[i][s] = ev
		}
	}
	opts := noc.EvalOptions{TargetBER: ber, Objective: manager.MinEnergy}
	decisions, err := noc.Decide(net, evals, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range decisions {
		if !decisions[i].Feasible {
			t.Fatalf("link %d infeasible: %s", i, decisions[i].InfeasibleReason)
		}
	}
	return net, decisions, opts
}

// saturationRate reads the analytic saturation injection rate of the built
// decision set.
func saturationRate(t *testing.T, net *noc.Network, decisions []noc.LinkDecision, opts noc.EvalOptions) float64 {
	t.Helper()
	res, err := noc.Aggregate(net, decisions, opts)
	if err != nil {
		t.Fatal(err)
	}
	return res.SaturationInjectionBitsPerSec
}

// TestRunNetworkReplaysRecordedTrace pins the Run = Record + RunTrace
// contract: a recorded trace replays to bit-identical results.
func TestRunNetworkReplaysRecordedTrace(t *testing.T) {
	net, decisions, opts := buildNetwork(t, noc.Bus, 12, 1e-11)
	cfg := NetConfig{
		Net:                     net,
		Decisions:               decisions,
		InjectionRateBitsPerSec: 0.4 * saturationRate(t, net, decisions, opts),
		Messages:                3000,
		Seed:                    7,
	}
	ctx := context.Background()
	direct, err := RunNetwork(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := RecordNetworkTrace(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	replayed, err := RunNetworkTrace(ctx, cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(direct, replayed) {
		t.Fatal("trace replay differs from the direct run")
	}
	// Replay does not need the workload-generation fields: the trace
	// carries its own arrival times, destinations and payload sizes.
	bare, err := RunNetworkTrace(ctx, NetConfig{Net: net, Decisions: decisions}, tr)
	if err != nil {
		t.Fatalf("replay with zero generation fields rejected: %v", err)
	}
	if !reflect.DeepEqual(direct, bare) {
		t.Fatal("generation-only fields leaked into the replay results")
	}
	if direct.Messages != int64(cfg.Messages) || direct.Dropped != 0 {
		t.Fatalf("delivered %d / dropped %d of %d messages with unbounded queues",
			direct.Messages, direct.Dropped, cfg.Messages)
	}
}

// TestNetworkDeterministicAcrossRuns: a fixed seed reproduces every field
// of the results, event counts and percentiles included.
func TestNetworkDeterministicAcrossRuns(t *testing.T) {
	net, decisions, opts := buildNetwork(t, noc.Mesh, 16, 1e-11)
	cfg := NetConfig{
		Net:                     net,
		Decisions:               decisions,
		InjectionRateBitsPerSec: 0.6 * saturationRate(t, net, decisions, opts),
		Messages:                5000,
		Seed:                    42,
	}
	ref, err := RunNetwork(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for run := 0; run < 2; run++ {
		res, err := RunNetwork(context.Background(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(res, ref) {
			t.Fatalf("run %d differs from the first run with the same seed", run+2)
		}
	}
	// A different seed must actually change the workload.
	cfg.Seed = 43
	other, err := RunNetwork(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if other.MeanLatencySec == ref.MeanLatencySec && other.SimTimeSec == ref.SimTimeSec {
		t.Fatal("changing the seed changed nothing — the RNG is not wired through")
	}
}

// TestNetworkMultiHopForwarding: on a mesh, off-row/off-column pairs cross
// two links, and the simulator's mean hop count matches the routing table's
// traffic-weighted mean exactly on a permutation workload.
func TestNetworkMultiHopForwarding(t *testing.T) {
	net, decisions, opts := buildNetwork(t, noc.Mesh, 16, 1e-11)
	// Deterministic single-destination rows: tile s → tile (s+5)%16, which
	// crosses rows AND columns for most pairs.
	traffic := make(noc.Matrix, 16)
	for s := range traffic {
		traffic[s] = make([]float64, 16)
		traffic[s][(s+5)%16] = 1
	}
	wantHops := 0.0
	for s := 0; s < 16; s++ {
		route, err := net.Route(s, (s+5)%16)
		if err != nil {
			t.Fatal(err)
		}
		wantHops += float64(len(route)) / 16
	}
	res, err := RunNetwork(context.Background(), NetConfig{
		Net:                     net,
		Decisions:               decisions,
		Traffic:                 traffic,
		InjectionRateBitsPerSec: 0.3 * saturationRate(t, net, decisions, opts),
		Messages:                4000,
		Seed:                    1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.MeanHops-wantHops) > 0.02 {
		t.Fatalf("mean hops %.3f, routing table says %.3f", res.MeanHops, wantHops)
	}
	if res.MeanHops <= 1 {
		t.Fatalf("mean hops %.3f — no multi-hop traffic on a permutation mesh workload", res.MeanHops)
	}
}

// TestNetworkBoundedQueuesDrop: a 1-deep buffer under heavy load drops
// messages and never reports an occupancy above the bound.
func TestNetworkBoundedQueuesDrop(t *testing.T) {
	net, decisions, opts := buildNetwork(t, noc.Bus, 12, 1e-11)
	res, err := RunNetwork(context.Background(), NetConfig{
		Net:                     net,
		Decisions:               decisions,
		InjectionRateBitsPerSec: 0.95 * saturationRate(t, net, decisions, opts),
		Messages:                5000,
		Seed:                    3,
		MaxQueueDepth:           1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Dropped == 0 {
		t.Fatal("no drops at 95% load with a 1-deep buffer")
	}
	if res.Messages+res.Dropped != res.Injected {
		t.Fatalf("delivered %d + dropped %d != injected %d", res.Messages, res.Dropped, res.Injected)
	}
	var perLinkDrops int64
	for _, l := range res.PerLink {
		perLinkDrops += l.Drops
		if l.MaxQueueDepth > 1 {
			t.Fatalf("link %d reached occupancy %d with a 1-deep bound", l.Link, l.MaxQueueDepth)
		}
	}
	if perLinkDrops != res.Dropped {
		t.Fatalf("per-link drops sum to %d, total says %d", perLinkDrops, res.Dropped)
	}

	// Multi-hop overload: messages served on a row link and then dropped
	// at the column link can finish transmitting after the last delivery.
	// The horizon must cover them, so no link ever reports a busy fraction
	// above 1.
	mesh, meshDecisions, meshOpts := buildNetwork(t, noc.Mesh, 16, 1e-11)
	over, err := RunNetwork(context.Background(), NetConfig{
		Net:                     mesh,
		Decisions:               meshDecisions,
		InjectionRateBitsPerSec: 1.5 * saturationRate(t, mesh, meshDecisions, meshOpts),
		Messages:                8000,
		Seed:                    6,
		MaxQueueDepth:           2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if over.Dropped == 0 {
		t.Fatal("no drops on an overloaded mesh with 2-deep buffers")
	}
	for _, l := range over.PerLink {
		if l.Utilization > 1 {
			t.Fatalf("link %d utilization %g > 1 — horizon clipped at the last delivery", l.Link, l.Utilization)
		}
	}
}

// TestNetworkSaturationGrowsQueues is the overload half of the acceptance
// criterion: above the analytic saturation rate the DES is not in steady
// state — doubling the horizon roughly doubles the backlog and the mean
// wait — while below saturation both are horizon-independent.
func TestNetworkSaturationGrowsQueues(t *testing.T) {
	net, decisions, opts := buildNetwork(t, noc.Bus, 12, 1e-11)
	sat := saturationRate(t, net, decisions, opts)

	run := func(rate float64, messages int) NetResults {
		t.Helper()
		res, err := RunNetwork(context.Background(), NetConfig{
			Net:                     net,
			Decisions:               decisions,
			InjectionRateBitsPerSec: rate,
			Messages:                messages,
			Seed:                    11,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	// The analytic model flags the overload...
	over, err := noc.Aggregate(net, decisions, noc.EvalOptions{
		TargetBER: opts.TargetBER, Objective: opts.Objective,
		InjectionRateBitsPerSec: 1.3 * sat,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !over.Saturated || !math.IsInf(over.MeanLatencySec, 1) {
		t.Fatalf("analytic model not saturated at 1.3× its own saturation rate (saturated=%v, mean=%g)",
			over.Saturated, over.MeanLatencySec)
	}

	// ...and the simulator shows what the flag means: unbounded growth.
	short, long := run(1.3*sat, 10000), run(1.3*sat, 20000)
	if ratio := long.MeanQueueWaitSec / short.MeanQueueWaitSec; ratio < 1.5 {
		t.Fatalf("mean wait grew only %.2f× when the overload horizon doubled — queues look bounded", ratio)
	}
	maxDepth := func(r NetResults) int {
		out := 0
		for _, l := range r.PerLink {
			if l.MaxQueueDepth > out {
				out = l.MaxQueueDepth
			}
		}
		return out
	}
	if d1, d2 := maxDepth(short), maxDepth(long); d2 < d1*3/2 {
		t.Fatalf("max queue depth grew %d → %d over a doubled overload horizon — queues look bounded", d1, d2)
	}

	// Below saturation the same doubling leaves the wait statistics flat.
	stableShort, stableLong := run(0.5*sat, 10000), run(0.5*sat, 20000)
	if ratio := stableLong.MeanQueueWaitSec / stableShort.MeanQueueWaitSec; ratio > 1.3 || ratio < 0.7 {
		t.Fatalf("mean wait changed %.2f× with the horizon at half load — not steady state", ratio)
	}
}

// TestNetworkEnergyMatchesHandComputation re-derives the energy split from
// the per-link utilizations the run itself reports.
func TestNetworkEnergyMatchesHandComputation(t *testing.T) {
	net, decisions, opts := buildNetwork(t, noc.Crossbar, 8, 1e-11)
	res, err := RunNetwork(context.Background(), NetConfig{
		Net:                     net,
		Decisions:               decisions,
		InjectionRateBitsPerSec: 0.5 * saturationRate(t, net, decisions, opts),
		Messages:                3000,
		Seed:                    5,
	})
	if err != nil {
		t.Fatal(err)
	}
	var laser, mod, intf float64
	for i, l := range net.Links() {
		nw := float64(len(l.Lambdas))
		busy := res.PerLink[i].Utilization * res.SimTimeSec
		laser += decisions[i].LaserPowerW * nw * res.SimTimeSec
		mod += l.Config.ModulatorPowerW * nw * busy
		intf += l.Config.InterfacePowerFor(decisions[i].Eval.Code).TotalW() * busy
	}
	for _, pair := range [][2]float64{{laser, res.LaserEnergyJ}, {mod, res.ModulatorEnergyJ}, {intf, res.InterfaceEnergyJ}} {
		if rel := math.Abs(pair[0]-pair[1]) / pair[1]; rel > 1e-9 {
			t.Fatalf("energy component off by %g relative (want %g, got %g)", rel, pair[0], pair[1])
		}
	}
	if got, want := res.TotalEnergyJ, res.LaserEnergyJ+res.ModulatorEnergyJ+res.InterfaceEnergyJ; got != want {
		t.Fatalf("total energy %g != sum of components %g", got, want)
	}
}

// TestNetworkConfigValidation walks the rejection paths.
func TestNetworkConfigValidation(t *testing.T) {
	net, decisions, opts := buildNetwork(t, noc.Bus, 12, 1e-11)
	rate := 0.4 * saturationRate(t, net, decisions, opts)
	good := NetConfig{Net: net, Decisions: decisions, InjectionRateBitsPerSec: rate, Messages: 100, Seed: 1}

	cases := []struct {
		name   string
		mutate func(*NetConfig)
	}{
		{"nil network", func(c *NetConfig) { c.Net = nil }},
		{"decision count", func(c *NetConfig) { c.Decisions = decisions[:3] }},
		{"infeasible link", func(c *NetConfig) {
			bad := append([]noc.LinkDecision(nil), decisions...)
			bad[2].Feasible = false
			c.Decisions = bad
		}},
		{"zero rate", func(c *NetConfig) { c.InjectionRateBitsPerSec = 0 }},
		{"NaN rate", func(c *NetConfig) { c.InjectionRateBitsPerSec = math.NaN() }},
		{"negative messages", func(c *NetConfig) { c.Messages = -1 }},
		{"negative message bits", func(c *NetConfig) { c.MessageBits = -8 }},
		{"negative queue bound", func(c *NetConfig) { c.MaxQueueDepth = -1 }},
		{"wrong traffic shape", func(c *NetConfig) { c.Traffic = noc.UniformMatrix(5) }},
	}
	for _, tc := range cases {
		cfg := good
		tc.mutate(&cfg)
		if _, err := RunNetwork(context.Background(), cfg); err == nil {
			t.Errorf("%s: no error", tc.name)
		}
	}
	if _, err := RunNetwork(context.Background(), good); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
}

// TestNetworkCancellation: a canceled context aborts both generation and
// the event loop.
func TestNetworkCancellation(t *testing.T) {
	net, decisions, opts := buildNetwork(t, noc.Bus, 12, 1e-11)
	cfg := NetConfig{
		Net:                     net,
		Decisions:               decisions,
		InjectionRateBitsPerSec: 0.4 * saturationRate(t, net, decisions, opts),
		Messages:                5000,
		Seed:                    1,
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunNetwork(ctx, cfg); err == nil {
		t.Fatal("canceled run reported no error")
	}
	tr, err := RecordNetworkTrace(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunNetworkTrace(ctx, cfg, tr); err == nil {
		t.Fatal("canceled replay reported no error")
	}
}
