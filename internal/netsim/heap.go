package netsim

// heapItem orders the elements of a simHeap; before must be a strict
// ordering ("strictly earlier than").
type heapItem[E any] interface{ before(E) bool }

// simHeap is the typed min-heap shared by the trace generator
// (arrivalEvent) and the network discrete-event simulator (netEvent). The
// sift algorithm mirrors container/heap exactly — so pop order, including
// ties under the element's ordering, is unchanged from the historical
// per-type heaps — but push takes the concrete type: no per-event
// interface boxing allocation in the event hot loops.
type simHeap[E heapItem[E]] []E

func (h *simHeap[E]) push(ev E) {
	*h = append(*h, ev)
	h.up(len(*h) - 1)
}

func (h *simHeap[E]) pop() E {
	old := *h
	n := len(old) - 1
	old[0], old[n] = old[n], old[0]
	h.down(0, n)
	ev := (*h)[n]
	*h = (*h)[:n]
	return ev
}

func (h simHeap[E]) up(j int) {
	for {
		i := (j - 1) / 2 // parent
		if i == j || !h[j].before(h[i]) {
			break
		}
		h[i], h[j] = h[j], h[i]
		j = i
	}
}

func (h simHeap[E]) down(i0, n int) {
	i := i0
	for {
		j1 := 2*i + 1
		if j1 >= n || j1 < 0 {
			break
		}
		j := j1
		if j2 := j1 + 1; j2 < n && h[j2].before(h[j1]) {
			j = j2
		}
		if !h[j].before(h[i]) {
			break
		}
		h[i], h[j] = h[j], h[i]
		i = j
	}
}
