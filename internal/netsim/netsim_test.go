package netsim

import (
	"testing"

	"photonoc/internal/manager"
)

func TestRunDefaultDelivers(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Messages = 5000
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Messages != 5000 {
		t.Errorf("delivered %d messages, want 5000", res.Messages)
	}
	if res.DeliveredBits != int64(5000*cfg.MessageBits) {
		t.Errorf("delivered bits = %d", res.DeliveredBits)
	}
	if res.SimTimeSec <= 0 || res.ThroughputBitsPerSec <= 0 {
		t.Error("degenerate time/throughput")
	}
	// Latency is at least one transfer time.
	minTransfer := float64(cfg.MessageBits) / (16 * 10e9)
	if res.MeanLatencySec < minTransfer {
		t.Errorf("mean latency %g below a single transfer %g", res.MeanLatencySec, minTransfer)
	}
	// Percentiles ordered.
	if !(res.P50LatencySec <= res.P95LatencySec && res.P95LatencySec <= res.P99LatencySec && res.P99LatencySec <= res.MaxLatencySec) {
		t.Error("latency percentiles out of order")
	}
	// Energy parts sum to total.
	sum := res.LaserEnergyJ + res.ModulatorEnergyJ + res.InterfaceEnergyJ + res.IdleEnergyJ
	if diff := res.TotalEnergyJ - sum; diff > 1e-12 || diff < -1e-12 {
		t.Error("energy breakdown does not sum")
	}
	if res.EnergyPerBitJ <= 0 {
		t.Error("energy per bit missing")
	}
	// With MinEnergy and no deadlines, the manager should always pick
	// the paper's most efficient scheme.
	if res.SchemeUse["H(71,64)"] != res.Messages {
		t.Errorf("scheme usage %v, want all H(71,64)", res.SchemeUse)
	}
	if res.ChannelUtilization <= 0 || res.ChannelUtilization >= 1 {
		t.Errorf("utilization %g out of range", res.ChannelUtilization)
	}
}

func TestRunDeterministicWithSeed(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Messages = 2000
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.MeanLatencySec != b.MeanLatencySec || a.TotalEnergyJ != b.TotalEnergyJ {
		t.Error("identical seeds should reproduce identical results")
	}
	cfg.Seed = 2
	c, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.MeanLatencySec == c.MeanLatencySec {
		t.Error("different seeds should perturb the run")
	}
}

func TestLatencyGrowsWithLoad(t *testing.T) {
	mk := func(load float64) Results {
		cfg := DefaultConfig()
		cfg.Messages = 4000
		cfg.Load = load
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	low := mk(0.2)
	high := mk(0.7)
	if high.MeanQueueWaitSec <= low.MeanQueueWaitSec {
		t.Errorf("queueing at load 0.7 (%g) should exceed load 0.2 (%g)",
			high.MeanQueueWaitSec, low.MeanQueueWaitSec)
	}
}

func TestHotspotCongestsHotChannel(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Messages = 4000
	cfg.Load = 0.25
	uniform, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Pattern = Hotspot
	cfg.HotspotNode = 3
	hot, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if hot.P95LatencySec <= uniform.P95LatencySec {
		t.Errorf("hotspot P95 %g should exceed uniform %g", hot.P95LatencySec, uniform.P95LatencySec)
	}
}

func TestIdleLaserOffSavesEnergy(t *testing.T) {
	// At low load most channel time is idle: the [9] extension must cut
	// total energy substantially.
	base := DefaultConfig()
	base.Messages = 3000
	base.Load = 0.1
	on, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	base.IdleLaserOff = true
	off, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	if off.IdleEnergyJ != 0 {
		t.Error("idle-laser-off should zero idle energy")
	}
	if on.IdleEnergyJ <= 0 {
		t.Error("baseline should accumulate idle energy")
	}
	if off.TotalEnergyJ >= on.TotalEnergyJ*0.8 {
		t.Errorf("idle-off total %g should be well below baseline %g", off.TotalEnergyJ, on.TotalEnergyJ)
	}
}

func TestAdaptiveDeadlinePolicy(t *testing.T) {
	// Tight deadlines with adaptation: the manager should mix schemes —
	// fast uncoded transfers when slack is short, coded when it is not —
	// and miss fewer deadlines than an energy-only policy.
	cfg := DefaultConfig()
	cfg.Messages = 6000
	cfg.Load = 0.5
	cfg.DeadlineSlack = 1.4 // between CT(H(71,64))=1.11 and CT(H(7,4))=1.75
	cfg.AdaptToDeadline = true
	adaptive, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.AdaptToDeadline = false
	cfg.Objective = manager.MinPower // would always pick H(7,4): CT 1.75
	static, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if adaptive.DeadlineMisses >= static.DeadlineMisses {
		t.Errorf("adaptive misses %d, static-H(7,4) misses %d — adaptation should help",
			adaptive.DeadlineMisses, static.DeadlineMisses)
	}
	if len(adaptive.SchemeUse) < 2 {
		t.Errorf("adaptive policy never mixed schemes: %v", adaptive.SchemeUse)
	}
}

func TestStreamingPatternRuns(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Pattern = Streaming
	cfg.Messages = 3000
	cfg.DeadlineSlack = 2.0
	cfg.AdaptToDeadline = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Messages != 3000 {
		t.Errorf("messages = %d", res.Messages)
	}
}

func TestPermutationPatternRuns(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Pattern = Permutation
	cfg.Messages = 2000
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Messages != 2000 {
		t.Errorf("messages = %d", res.Messages)
	}
}

func TestConfigValidation(t *testing.T) {
	mutations := []func(*Config){
		func(c *Config) { c.Schemes = nil },
		func(c *Config) { c.TargetBER = 0 },
		func(c *Config) { c.MessageBits = 0 },
		func(c *Config) { c.Load = 0 },
		func(c *Config) { c.Load = 1.5 },
		func(c *Config) { c.Messages = 0 },
		func(c *Config) { c.DeadlineSlack = -1 },
		func(c *Config) { c.Pattern = Hotspot; c.HotspotNode = 99 },
	}
	for i, mutate := range mutations {
		cfg := DefaultConfig()
		mutate(&cfg)
		if _, err := Run(cfg); err == nil {
			t.Errorf("mutation %d should fail validation", i)
		}
	}
}

func BenchmarkSimulation(b *testing.B) {
	cfg := DefaultConfig()
	cfg.Messages = 2000
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
