package netsim

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"sort"

	"photonoc/internal/core"
)

// TraceEvent is one recorded message arrival — the unit of the portable
// trace format used to replay workloads (the "benchmark applications" of
// the paper's future work, captured once and re-run against different link
// policies).
type TraceEvent struct {
	TimeSec     float64 `json:"t"`
	Src         int     `json:"src"`
	Dst         int     `json:"dst"`
	Bits        int     `json:"bits"`
	DeadlineSec float64 `json:"deadline,omitempty"`
}

// Trace is a time-ordered sequence of message arrivals.
type Trace []TraceEvent

// Validate checks ordering and topology bounds for an n-ONI interconnect.
func (tr Trace) Validate(n int) error {
	for i, ev := range tr {
		if ev.Src < 0 || ev.Src >= n || ev.Dst < 0 || ev.Dst >= n {
			return fmt.Errorf("netsim: trace event %d endpoints (%d→%d) outside [0,%d)", i, ev.Src, ev.Dst, n)
		}
		if ev.Src == ev.Dst {
			return fmt.Errorf("netsim: trace event %d sends to itself", i)
		}
		if ev.Bits <= 0 {
			return fmt.Errorf("netsim: trace event %d has %d bits", i, ev.Bits)
		}
		if math.IsNaN(ev.TimeSec) || math.IsInf(ev.TimeSec, 0) || ev.TimeSec < 0 {
			// A NaN would slip through the ordering comparison below (every
			// NaN comparison is false), and negative times would collide
			// with the simulators' t = 0 server anchor (nextFree starts at
			// zero), charging phantom queue wait — reject both instead of
			// silently poisoning the statistics.
			return fmt.Errorf("netsim: trace event %d time %g must be finite and non-negative", i, ev.TimeSec)
		}
		if i > 0 && ev.TimeSec < tr[i-1].TimeSec {
			return fmt.Errorf("netsim: trace not time-ordered at event %d", i)
		}
		if ev.DeadlineSec != 0 && !(ev.DeadlineSec >= ev.TimeSec) {
			// !(≥) instead of (<) so a NaN deadline is rejected too.
			return fmt.Errorf("netsim: trace event %d deadline precedes arrival (or is NaN)", i)
		}
	}
	return nil
}

// WriteJSON streams the trace as JSON.
func (tr Trace) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(tr)
}

// ReadTraceJSON parses a trace written by WriteJSON.
func ReadTraceJSON(r io.Reader) (Trace, error) {
	var tr Trace
	if err := json.NewDecoder(r).Decode(&tr); err != nil {
		return nil, fmt.Errorf("netsim: decoding trace: %w", err)
	}
	return tr, nil
}

// RecordTrace generates the arrival stream the configured workload would
// produce, without simulating the link — a reusable, inspectable workload
// artifact.
func RecordTrace(cfg Config) (Trace, error) {
	return RecordTraceCtx(context.Background(), cfg)
}

// RecordTraceCtx is RecordTrace under a context: generation of very large
// workloads (the trace is materialized in memory) aborts promptly on
// cancellation.
func RecordTraceCtx(ctx context.Context, cfg Config) (Trace, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	topo := cfg.Link.Channel.Topo
	capacity := float64(topo.Wavelengths) * cfg.Link.FmodHz
	baseTransfer := float64(cfg.MessageBits) / capacity
	srcRate := cfg.Load * capacity / float64(cfg.MessageBits)
	gen := newTrafficGenerator(cfg, rng, srcRate, baseTransfer)

	events := make(eventHeap, 0, topo.ONIs)
	for s := 0; s < topo.ONIs; s++ {
		if ev, ok := gen.next(s, 0); ok {
			events.push(ev)
		}
	}
	tr := make(Trace, 0, cfg.Messages)
	for len(events) > 0 && len(tr) < cfg.Messages {
		if len(tr)%4096 == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		ev := events.pop()
		if nx, ok := gen.next(ev.msg.src, ev.at); ok {
			events.push(nx)
		}
		tr = append(tr, TraceEvent{
			TimeSec:     ev.msg.arrival,
			Src:         ev.msg.src,
			Dst:         ev.msg.dst,
			Bits:        ev.msg.bits,
			DeadlineSec: ev.msg.deadline,
		})
	}
	sort.Slice(tr, func(i, j int) bool { return tr[i].TimeSec < tr[j].TimeSec })
	return tr, nil
}

// RunTrace replays a recorded trace against the configured link and
// policies. The traffic fields of cfg (Pattern, Load, Messages, Seed,
// DeadlineSlack) are ignored; everything else applies.
func RunTrace(cfg Config, tr Trace) (Results, error) {
	return RunTraceCtx(context.Background(), cfg, tr, nil)
}

// RunTraceCtx is RunTrace under a context and an optional shared evaluator
// (see RunCtx).
func RunTraceCtx(ctx context.Context, cfg Config, tr Trace, ev core.Evaluator) (Results, error) {
	if err := cfg.Validate(); err != nil {
		return Results{}, err
	}
	if err := tr.Validate(cfg.Link.Channel.Topo.ONIs); err != nil {
		return Results{}, err
	}
	replay := cfg
	replay.Messages = len(tr)
	return runMessages(ctx, replay, ev, func(yield func(message)) {
		for _, ev := range tr {
			yield(message{
				src:      ev.Src,
				dst:      ev.Dst,
				arrival:  ev.TimeSec,
				deadline: ev.DeadlineSec,
				bits:     ev.Bits,
			})
		}
	})
}
