// Package netsim is a discrete-event simulator of application traffic over
// the paper's MWSR optical interconnect: every ONI sources messages toward
// the other ONIs' channels, the optical link manager configures the ECC
// scheme and laser power per transfer, and the simulator accounts latency,
// deadline behaviour and energy — the "benchmark applications" evaluation
// the paper defers to future work (Section VI), driven here by synthetic
// workloads. It also implements the idle-laser-off extension of [9].
//
// Beyond the single calibrated link (Run/RunTrace), the package simulates
// whole noc.Network topologies (RunNetwork/RunNetworkTrace): per-source
// Poisson injection sampled from a traffic matrix, XY multi-hop forwarding
// over the network's routing table, one MWSR server per link serializing
// transfers at the link's decided capacity, bounded or unbounded per-link
// queues, and the standing-vs-dynamic energy split. The network simulator
// takes its per-link scheme/DAC decisions from noc.Decide (the engine
// layer solves them through its shared LRU), which is what makes its
// results directly comparable — decision for decision — with the analytic
// noc.Aggregate it cross-validates.
package netsim

import (
	"fmt"

	"photonoc/internal/core"
	"photonoc/internal/ecc"
	"photonoc/internal/manager"
)

// Pattern selects the synthetic traffic workload.
type Pattern int

// Traffic patterns.
const (
	// Uniform sends each message to a uniformly random other ONI.
	Uniform Pattern = iota
	// Hotspot concentrates a configurable share of the traffic
	// (Config.HotspotFraction, default 30%) on one destination.
	Hotspot
	// Permutation fixes dst = (src + N/2) mod N (a transpose-like map).
	Permutation
	// Streaming emits periodic, deadline-tagged flows (multimedia-like)
	// from half of the sources, Poisson background from the rest.
	Streaming
)

// String implements fmt.Stringer.
func (p Pattern) String() string {
	switch p {
	case Uniform:
		return "uniform"
	case Hotspot:
		return "hotspot"
	case Permutation:
		return "permutation"
	case Streaming:
		return "streaming"
	default:
		return fmt.Sprintf("Pattern(%d)", int(p))
	}
}

// ParsePattern maps the CLI spelling of a workload to its Pattern — the
// inverse of String, so command-line tools stop switching on magic strings.
func ParsePattern(s string) (Pattern, error) {
	switch s {
	case "uniform":
		return Uniform, nil
	case "hotspot":
		return Hotspot, nil
	case "permutation":
		return Permutation, nil
	case "streaming":
		return Streaming, nil
	default:
		return 0, fmt.Errorf("netsim: unknown pattern %q (want uniform|hotspot|permutation|streaming)", s)
	}
}

// Config drives one simulation run.
type Config struct {
	// Link is the channel/interface configuration (paper defaults via
	// core.DefaultConfig).
	Link core.LinkConfig
	// Schemes is the manager's roster (paper: the three schemes).
	Schemes []ecc.Code
	// DAC is the laser controller resolution.
	DAC manager.DAC
	// TargetBER applies to every transfer.
	TargetBER float64
	// Pattern picks the workload; HotspotNode the hot destination.
	Pattern     Pattern
	HotspotNode int
	// HotspotFraction is the share of each non-hotspot source's messages
	// aimed straight at HotspotNode (the remainder is uniform and may hit
	// the hotspot again). Hotspot runs require it in (0, 1); DefaultConfig
	// sets the historical 0.30.
	HotspotFraction float64
	// MessageBits is the payload per message.
	MessageBits int
	// Load is the offered payload utilization per channel (0, 1):
	// the fraction of NW·Fmod each reader would receive uncoded.
	Load float64
	// DeadlineSlack tags each message with
	// deadline = arrival + slack · (uncoded transfer time); 0 disables
	// deadlines.
	DeadlineSlack float64
	// Objective is the manager goal for non-deadline traffic.
	Objective manager.Objective
	// AdaptToDeadline lets the manager cap CT from the remaining slack
	// (the paper's real-time scenario).
	AdaptToDeadline bool
	// IdleLaserOff turns lasers off on idle channels (extension [9]).
	IdleLaserOff bool
	// Messages is the number of messages to simulate (across all sources).
	Messages int
	// Seed makes runs reproducible.
	Seed int64
}

// DefaultConfig returns a ready-to-run paper-scale simulation: 12 ONIs,
// 4 KiB messages, uniform traffic at 40% load, BER 1e-11.
func DefaultConfig() Config {
	return Config{
		Link:            core.DefaultConfig(),
		Schemes:         ecc.PaperSchemes(),
		DAC:             manager.PaperDAC(),
		TargetBER:       1e-11,
		Pattern:         Uniform,
		HotspotFraction: 0.30,
		MessageBits:     4096 * 8,
		Load:            0.4,
		DeadlineSlack:   0,
		Objective:       manager.MinEnergy,
		Messages:        20000,
		Seed:            1,
	}
}

// Validate checks the configuration.
func (c *Config) Validate() error {
	if err := c.Link.Validate(); err != nil {
		return err
	}
	if len(c.Schemes) == 0 {
		return fmt.Errorf("netsim: empty scheme roster")
	}
	if c.TargetBER <= 0 || c.TargetBER >= 0.5 {
		return fmt.Errorf("netsim: target BER %g outside (0, 0.5)", c.TargetBER)
	}
	if c.MessageBits <= 0 {
		return fmt.Errorf("netsim: message size %d must be positive", c.MessageBits)
	}
	if c.Load <= 0 || c.Load >= 1 {
		return fmt.Errorf("netsim: load %g outside (0, 1)", c.Load)
	}
	if c.Messages <= 0 {
		return fmt.Errorf("netsim: message count %d must be positive", c.Messages)
	}
	if c.DeadlineSlack < 0 {
		return fmt.Errorf("netsim: negative deadline slack %g", c.DeadlineSlack)
	}
	n := c.Link.Channel.Topo.ONIs
	if c.Pattern == Hotspot {
		if c.HotspotNode < 0 || c.HotspotNode >= n {
			return fmt.Errorf("netsim: hotspot node %d outside [0,%d)", c.HotspotNode, n)
		}
		if c.HotspotFraction <= 0 || c.HotspotFraction >= 1 {
			return fmt.Errorf("netsim: hotspot fraction %g outside (0, 1)", c.HotspotFraction)
		}
	}
	return nil
}

// Results summarizes one run.
type Results struct {
	Messages      int64
	DeliveredBits int64
	SimTimeSec    float64
	// Latency statistics in seconds (arrival → delivery).
	MeanLatencySec float64
	P50LatencySec  float64
	P95LatencySec  float64
	P99LatencySec  float64
	MaxLatencySec  float64
	// MeanQueueWaitSec is the arbitration/queueing component alone.
	MeanQueueWaitSec float64
	// Deadline accounting (when DeadlineSlack > 0).
	DeadlineMisses int64
	// Energy breakdown in joules.
	LaserEnergyJ     float64
	ModulatorEnergyJ float64
	InterfaceEnergyJ float64
	IdleEnergyJ      float64
	TotalEnergyJ     float64
	// EnergyPerBitJ is total energy over delivered payload bits.
	EnergyPerBitJ float64
	// ThroughputBitsPerSec is delivered payload over simulated time.
	ThroughputBitsPerSec float64
	// SchemeUse counts transfers per scheme name.
	SchemeUse map[string]int64
	// ChannelUtilization is mean busy fraction across channels.
	ChannelUtilization float64
	// PerChannel breaks the run down by destination (reader) channel.
	PerChannel []ChannelStats
}

// ChannelStats is the per-destination view of a run.
type ChannelStats struct {
	// Channel is the reader/destination ONI index.
	Channel int
	// Messages received on this channel.
	Messages int64
	// BusyFraction of the simulated time the channel served transfers.
	BusyFraction float64
	// ActiveEnergyJ spent on transfers into this channel (laser+MR+intf).
	ActiveEnergyJ float64
}
