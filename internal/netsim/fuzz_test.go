package netsim

import (
	"math"
	"testing"
)

// FuzzParsePattern: the CLI-facing parser never panics and round-trips
// with String on every accepted spelling.
func FuzzParsePattern(f *testing.F) {
	for _, seed := range []string{"uniform", "hotspot", "permutation", "streaming", "", "Uniform", "hotspot ", "\xff"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		p, err := ParsePattern(s)
		if err != nil {
			return
		}
		if p.String() != s {
			t.Fatalf("ParsePattern(%q) = %v, but %v.String() = %q", s, p, p, p.String())
		}
		if back, err := ParsePattern(p.String()); err != nil || back != p {
			t.Fatalf("round trip %q → %v → %q broke: %v", s, p, p.String(), err)
		}
	})
}

// FuzzTraceValidate: arbitrary traces never panic the validator, and a
// trace it accepts must satisfy the invariants replay relies on (ordering,
// in-range endpoints, positive payloads) — including surviving the
// empirical matrix extraction without division by zero.
func FuzzTraceValidate(f *testing.F) {
	f.Add(12, 0.0, 0, 1, 4096, 1.0, 1, 0, 8192)
	f.Add(2, -1.0, 0, 1, 0, 0.5, 1, 1, 64)
	f.Add(3, 1.0, 2, 2, 64, 0.5, 0, 2, 64)
	f.Add(4, math.NaN(), 0, 1, 64, 1.0, 1, 2, 64)
	f.Add(4, 0.0, 0, 1, 64, math.Inf(1), 1, 2, 64)
	f.Fuzz(func(t *testing.T, n int, t0 float64, s0, d0, b0 int, t1 float64, s1, d1, b1 int) {
		if n < 0 || n > 1024 {
			return
		}
		tr := Trace{
			{TimeSec: t0, Src: s0, Dst: d0, Bits: b0},
			{TimeSec: t1, Src: s1, Dst: d1, Bits: b1},
		}
		if err := tr.Validate(n); err != nil {
			return
		}
		// Accepted ⇒ invariants hold. The finiteness check is what keeps
		// the ordering comparison meaningful (a NaN time satisfies neither
		// side of <), and non-negativity is what the simulators' t = 0
		// server anchor relies on.
		for i, ev := range tr {
			if math.IsNaN(ev.TimeSec) || math.IsInf(ev.TimeSec, 0) || ev.TimeSec < 0 {
				t.Fatalf("accepted non-finite or negative time %g at event %d", ev.TimeSec, i)
			}
		}
		if tr[1].TimeSec < tr[0].TimeSec {
			t.Fatal("accepted an out-of-order trace")
		}
		for i, ev := range tr {
			if ev.Src < 0 || ev.Src >= n || ev.Dst < 0 || ev.Dst >= n || ev.Src == ev.Dst || ev.Bits <= 0 {
				t.Fatalf("accepted invalid event %d: %+v for %d tiles", i, ev, n)
			}
		}
		m, err := tr.Matrix(n)
		if err != nil {
			t.Fatalf("accepted trace fails matrix extraction: %v", err)
		}
		if len(m) != n {
			t.Fatalf("matrix has %d rows for %d tiles", len(m), n)
		}
	})
}
