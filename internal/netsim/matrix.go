package netsim

import "fmt"

// Matrix returns the pattern's stationary destination distribution for an
// n-tile interconnect: row s is the probability that a message sourced at s
// targets each destination (zero diagonal, rows sum to 1). It is the
// analytic counterpart of the sampling in trafficGenerator.pickDestination,
// and the traffic-matrix input of the network-level evaluator (internal/noc).
//
// hotspotNode and hotspotFrac apply to Hotspot only (Config.HotspotNode,
// Config.HotspotFraction); the Streaming pattern shapes arrival times, not
// destinations, so its matrix is Uniform's.
func (p Pattern) Matrix(n, hotspotNode int, hotspotFrac float64) ([][]float64, error) {
	if n < 2 {
		return nil, fmt.Errorf("netsim: matrix needs at least 2 tiles, got %d", n)
	}
	m := make([][]float64, n)
	for s := range m {
		m[s] = make([]float64, n)
	}
	uniform := 1 / float64(n-1)
	switch p {
	case Uniform, Streaming:
		for s := 0; s < n; s++ {
			for d := 0; d < n; d++ {
				if d != s {
					m[s][d] = uniform
				}
			}
		}
	case Hotspot:
		if hotspotNode < 0 || hotspotNode >= n {
			return nil, fmt.Errorf("netsim: hotspot node %d outside [0,%d)", hotspotNode, n)
		}
		if hotspotFrac <= 0 || hotspotFrac >= 1 {
			return nil, fmt.Errorf("netsim: hotspot fraction %g outside (0, 1)", hotspotFrac)
		}
		for s := 0; s < n; s++ {
			if s == hotspotNode {
				for d := 0; d < n; d++ {
					if d != s {
						m[s][d] = uniform
					}
				}
				continue
			}
			// The sampler sends the hotspot share straight to the hot node
			// and the rest uniformly over every other tile — which can hit
			// the hot node again, exactly as pickDestination draws it.
			for d := 0; d < n; d++ {
				if d != s {
					m[s][d] = (1 - hotspotFrac) * uniform
				}
			}
			m[s][hotspotNode] += hotspotFrac
		}
	case Permutation:
		for s := 0; s < n; s++ {
			d := (s + n/2) % n
			if d == s {
				d = (d + 1) % n
			}
			m[s][d] = 1
		}
	default:
		return nil, fmt.Errorf("netsim: unknown pattern %v", p)
	}
	return m, nil
}

// Matrix extracts the empirical traffic matrix of a recorded trace for an
// n-tile interconnect: row s is the fraction of source s's payload bits
// destined to each tile (rows of silent sources are zero). Trace-driven
// matrices feed the network-level evaluator with measured workloads.
func (tr Trace) Matrix(n int) ([][]float64, error) {
	if err := tr.Validate(n); err != nil {
		return nil, err
	}
	m := make([][]float64, n)
	totals := make([]float64, n)
	for s := range m {
		m[s] = make([]float64, n)
	}
	for _, ev := range tr {
		m[ev.Src][ev.Dst] += float64(ev.Bits)
		totals[ev.Src] += float64(ev.Bits)
	}
	for s := range m {
		if totals[s] == 0 {
			continue
		}
		for d := range m[s] {
			m[s][d] /= totals[s]
		}
	}
	return m, nil
}
