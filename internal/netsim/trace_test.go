package netsim

import (
	"strings"
	"testing"
)

func TestRecordTraceShape(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Messages = 1500
	cfg.DeadlineSlack = 2.0
	tr, err := RecordTrace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr) != 1500 {
		t.Fatalf("trace length %d", len(tr))
	}
	if err := tr.Validate(12); err != nil {
		t.Fatalf("recorded trace invalid: %v", err)
	}
	// Time-ordered, all deadlines after arrivals.
	for i, ev := range tr {
		if ev.DeadlineSec == 0 {
			t.Fatalf("event %d missing deadline despite slack config", i)
		}
	}
}

func TestRunEqualsRecordPlusReplay(t *testing.T) {
	// The structural guarantee of the refactor: Run == RecordTrace →
	// RunTrace, bit for bit.
	cfg := DefaultConfig()
	cfg.Messages = 2000
	direct, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := RecordTrace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	replayed, err := RunTrace(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if direct.MeanLatencySec != replayed.MeanLatencySec ||
		direct.TotalEnergyJ != replayed.TotalEnergyJ ||
		direct.Messages != replayed.Messages {
		t.Error("replaying the recorded trace diverged from the direct run")
	}
}

func TestTraceReplayAcrossPolicies(t *testing.T) {
	// The point of traces: the *same* workload compared under different
	// link policies. Latency-optimal must beat power-optimal on latency
	// on the identical arrival sequence.
	cfg := DefaultConfig()
	cfg.Messages = 3000
	tr, err := RecordTrace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fast := cfg
	fast.Objective = 2 // MinLatency
	slow := cfg
	slow.Objective = 0 // MinPower
	fastRes, err := RunTrace(fast, tr)
	if err != nil {
		t.Fatal(err)
	}
	slowRes, err := RunTrace(slow, tr)
	if err != nil {
		t.Fatal(err)
	}
	if fastRes.MeanLatencySec >= slowRes.MeanLatencySec {
		t.Errorf("min-latency %g should beat min-power %g on the same trace",
			fastRes.MeanLatencySec, slowRes.MeanLatencySec)
	}
	if fastRes.Messages != slowRes.Messages {
		t.Error("same trace must deliver the same message count")
	}
}

func TestTraceJSONRoundTrip(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Messages = 200
	cfg.DeadlineSlack = 1.5
	tr, err := RecordTrace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := tr.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTraceJSON(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(tr) {
		t.Fatalf("roundtrip length %d vs %d", len(back), len(tr))
	}
	for i := range tr {
		if back[i] != tr[i] {
			t.Fatalf("event %d changed in JSON roundtrip", i)
		}
	}
	// Replay of the deserialized trace still works.
	if _, err := RunTrace(cfg, back); err != nil {
		t.Fatal(err)
	}
	// Garbage JSON errors out.
	if _, err := ReadTraceJSON(strings.NewReader("{not json")); err == nil {
		t.Error("garbage JSON should error")
	}
}

func TestTraceValidate(t *testing.T) {
	good := Trace{{TimeSec: 0, Src: 0, Dst: 1, Bits: 8}}
	if err := good.Validate(12); err != nil {
		t.Errorf("good trace rejected: %v", err)
	}
	bad := []Trace{
		{{TimeSec: 0, Src: 0, Dst: 99, Bits: 8}},                                       // bad dst
		{{TimeSec: 0, Src: 3, Dst: 3, Bits: 8}},                                        // self-send
		{{TimeSec: 0, Src: 0, Dst: 1, Bits: 0}},                                        // no payload
		{{TimeSec: 5, Src: 0, Dst: 1, Bits: 8}, {TimeSec: 1, Src: 0, Dst: 1, Bits: 8}}, // unordered
		{{TimeSec: 5, Src: 0, Dst: 1, Bits: 8, DeadlineSec: 1}},                        // deadline in the past
	}
	for i, tr := range bad {
		if err := tr.Validate(12); err == nil {
			t.Errorf("bad trace %d accepted", i)
		}
	}
}
