package netsim

import (
	"context"
	"fmt"
	"sort"

	"photonoc/internal/core"
	"photonoc/internal/manager"
)

// message is one in-flight transfer.
type message struct {
	src, dst int
	arrival  float64
	deadline float64 // 0 = none
	bits     int
}

// arrivalEvent orders message generation on the event heap.
type arrivalEvent struct {
	at  float64
	msg message
}

// before orders arrivals by time alone; ties keep the heap's (stable,
// deterministic) layout order, as the historical per-type heap did.
func (e arrivalEvent) before(o arrivalEvent) bool { return e.at < o.at }

// eventHeap is the trace generator's min-heap on arrival time.
type eventHeap = simHeap[arrivalEvent]

// TokenOverheadSec is the fixed MWSR arbitration cost per transfer
// (token grant + manager request/response round trip). The network-level
// evaluator (internal/noc) charges the same cost per hop so analytic and
// simulated latencies share the arbitration model. The constant lives in
// core so noc and netsim can both reference it without a package cycle.
const TokenOverheadSec = core.TokenOverheadSec

// Run generates the configured workload and executes the simulation. It is
// exactly RecordTrace followed by RunTrace, which guarantees that recorded
// traces replay to identical results.
func Run(cfg Config) (Results, error) {
	return RunCtx(context.Background(), cfg, nil)
}

// RunCtx is Run under a context and, optionally, a shared evaluator: the
// engine layer passes itself as ev so every per-transfer manager decision
// resolves against the engine's memo cache instead of re-solving the
// optical budget per source. Cancellation aborts the event loop between
// transfers.
func RunCtx(ctx context.Context, cfg Config, ev core.Evaluator) (Results, error) {
	tr, err := RecordTraceCtx(ctx, cfg)
	if err != nil {
		return Results{}, err
	}
	return RunTraceCtx(ctx, cfg, tr, ev)
}

// runMessages is the service/energy/statistics core shared by Run and
// RunTrace. feed must yield messages in non-decreasing arrival order.
func runMessages(ctx context.Context, cfg Config, ev core.Evaluator, feed func(yield func(message))) (Results, error) {
	mgr, err := manager.NewWithEvaluator(&cfg.Link, cfg.Schemes, cfg.DAC, ev)
	if err != nil {
		return Results{}, err
	}
	topo := cfg.Link.Channel.Topo
	n := topo.ONIs
	nw := float64(topo.Wavelengths)
	capacity := nw * cfg.Link.FmodHz
	baseTransfer := float64(cfg.MessageBits) / capacity

	// Channel (reader) server state.
	nextFree := make([]float64, n)
	busyTime := make([]float64, n)
	idleLaserW := make([]float64, n) // standing laser power while idle
	chMessages := make([]int64, n)
	chEnergy := make([]float64, n)

	res := Results{SchemeUse: make(map[string]int64)}
	latencies := make([]float64, 0, cfg.Messages)
	var queueWaitSum float64
	var feedErr error

	feed(func(m message) {
		if feedErr != nil {
			return
		}
		if err := ctx.Err(); err != nil {
			feedErr = err
			return
		}
		start := m.arrival
		if nextFree[m.dst] > start {
			start = nextFree[m.dst]
		}
		start += TokenOverheadSec

		// The manager configures the link for this transfer.
		req := manager.Requirements{TargetBER: cfg.TargetBER, Objective: cfg.Objective}
		if cfg.AdaptToDeadline && m.deadline > 0 {
			avail := m.deadline - start
			if maxCT := avail / baseTransfer; maxCT >= 1 {
				req.MaxCT = maxCT
			} else {
				req.Objective = manager.MinLatency // already late: go fastest
			}
		}
		dec, err := mgr.ConfigureCtx(ctx, req)
		if err != nil {
			// Deadline pressure can make every scheme ineligible; retry
			// without the cap (best effort, counted as a miss below).
			req.MaxCT = 0
			req.Objective = manager.MinLatency
			dec, err = mgr.ConfigureCtx(ctx, req)
			if err != nil {
				feedErr = fmt.Errorf("netsim: configuring transfer: %w", err)
				return
			}
		}

		transfer := float64(m.bits) / capacity * dec.Eval.CT
		done := start + transfer
		nextFree[m.dst] = done
		busyTime[m.dst] += transfer
		idleLaserW[m.dst] = dec.QuantizedLaserPowerW * nw

		latency := done - m.arrival
		latencies = append(latencies, latency)
		queueWaitSum += start - m.arrival
		if m.deadline > 0 && done > m.deadline {
			res.DeadlineMisses++
		}

		// Active energy of the transfer, all wavelengths of the channel.
		laserE := dec.QuantizedLaserPowerW * nw * transfer
		modE := cfg.Link.ModulatorPowerW * nw * transfer
		intfE := cfg.Link.InterfacePowerFor(dec.Eval.Code).TotalW() * transfer
		res.LaserEnergyJ += laserE
		res.ModulatorEnergyJ += modE
		res.InterfaceEnergyJ += intfE
		chMessages[m.dst]++
		chEnergy[m.dst] += laserE + modE + intfE
		res.SchemeUse[dec.Eval.Code.Name()]++
		res.Messages++
		res.DeliveredBits += int64(m.bits)
		if done > res.SimTimeSec {
			res.SimTimeSec = done
		}
	})
	if feedErr != nil {
		return Results{}, feedErr
	}

	// Idle energy: lasers of an idle channel keep their standing power
	// unless the idle-laser-off extension [9] is active.
	if !cfg.IdleLaserOff {
		for d := 0; d < n; d++ {
			idle := res.SimTimeSec - busyTime[d]
			if idle > 0 {
				res.IdleEnergyJ += idleLaserW[d] * idle
			}
		}
	}
	res.TotalEnergyJ = res.LaserEnergyJ + res.ModulatorEnergyJ + res.InterfaceEnergyJ + res.IdleEnergyJ

	if len(latencies) > 0 {
		sort.Float64s(latencies)
		var sum float64
		for _, l := range latencies {
			sum += l
		}
		res.MeanLatencySec = sum / float64(len(latencies))
		res.P50LatencySec = percentile(latencies, 0.50)
		res.P95LatencySec = percentile(latencies, 0.95)
		res.P99LatencySec = percentile(latencies, 0.99)
		res.MaxLatencySec = latencies[len(latencies)-1]
		res.MeanQueueWaitSec = queueWaitSum / float64(len(latencies))
	}
	if res.DeliveredBits > 0 {
		res.EnergyPerBitJ = res.TotalEnergyJ / float64(res.DeliveredBits)
	}
	if res.SimTimeSec > 0 {
		res.ThroughputBitsPerSec = float64(res.DeliveredBits) / res.SimTimeSec
		var busy float64
		for _, b := range busyTime {
			busy += b
		}
		res.ChannelUtilization = busy / (res.SimTimeSec * float64(n))
		res.PerChannel = make([]ChannelStats, n)
		for d := 0; d < n; d++ {
			res.PerChannel[d] = ChannelStats{
				Channel:       d,
				Messages:      chMessages[d],
				BusyFraction:  busyTime[d] / res.SimTimeSec,
				ActiveEnergyJ: chEnergy[d],
			}
		}
	}
	return res, nil
}

// percentile reads a quantile from an ascending-sorted sample using the
// lower nearest-rank convention: index ⌊q·(n−1)⌋. Edge behavior is defined
// explicitly (and pinned by TestPercentileEdges) rather than left to
// implicit indexing: an empty sample yields 0, a single sample is returned
// for every q, q ≤ 0 (including NaN) yields the minimum and q ≥ 1 the
// maximum.
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if !(q > 0) { // q ≤ 0, and NaN quantiles land on the defined floor
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	return sorted[int(q*float64(len(sorted)-1))]
}
