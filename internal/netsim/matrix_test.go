package netsim

import (
	"math"
	"testing"
)

func rowSums(m [][]float64) []float64 {
	out := make([]float64, len(m))
	for s, row := range m {
		for _, w := range row {
			out[s] += w
		}
	}
	return out
}

func TestPatternMatrixStochastic(t *testing.T) {
	for _, p := range []Pattern{Uniform, Hotspot, Permutation, Streaming} {
		m, err := p.Matrix(8, 3, 0.30)
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		for s, sum := range rowSums(m) {
			if math.Abs(sum-1) > 1e-12 {
				t.Errorf("%v row %d sums to %g", p, s, sum)
			}
			if m[s][s] != 0 {
				t.Errorf("%v row %d sends to itself", p, s)
			}
		}
	}
	if _, err := Hotspot.Matrix(8, 99, 0.30); err == nil {
		t.Error("hotspot matrix accepted node 99")
	}
	if _, err := Hotspot.Matrix(8, 3, 1.5); err == nil {
		t.Error("hotspot matrix accepted fraction 1.5")
	}
	if _, err := Uniform.Matrix(1, 0, 0); err == nil {
		t.Error("matrix accepted 1 tile")
	}
}

// TestHotspotMatrixMatchesSampler compares the analytic matrix against the
// empirical destination frequencies of a recorded trace: the matrix is the
// sampler's stationary law, so the two must agree within Monte-Carlo noise.
func TestHotspotMatrixMatchesSampler(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Pattern = Hotspot
	cfg.HotspotNode = 5
	cfg.Messages = 60000
	tr, err := RecordTrace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n := cfg.Link.Channel.Topo.ONIs
	want, err := Hotspot.Matrix(n, cfg.HotspotNode, cfg.HotspotFraction)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([][]float64, n)
	totals := make([]float64, n)
	for s := range counts {
		counts[s] = make([]float64, n)
	}
	for _, ev := range tr {
		counts[ev.Src][ev.Dst]++
		totals[ev.Src]++
	}
	for s := 0; s < n; s++ {
		if totals[s] < 100 {
			t.Fatalf("source %d emitted only %g messages", s, totals[s])
		}
		for d := 0; d < n; d++ {
			got := counts[s][d] / totals[s]
			// Three-sigma binomial band around the analytic probability.
			sigma := math.Sqrt(want[s][d] * (1 - want[s][d]) / totals[s])
			if math.Abs(got-want[s][d]) > 3*sigma+1e-9 {
				t.Errorf("pair (%d,%d): empirical %g vs analytic %g (±%g)", s, d, got, want[s][d], 3*sigma)
			}
		}
	}
}

func TestTraceMatrixWeightsByBits(t *testing.T) {
	tr := Trace{
		{TimeSec: 0, Src: 0, Dst: 1, Bits: 3000},
		{TimeSec: 1, Src: 0, Dst: 2, Bits: 1000},
		{TimeSec: 2, Src: 2, Dst: 0, Bits: 500},
	}
	m, err := tr.Matrix(3)
	if err != nil {
		t.Fatal(err)
	}
	if m[0][1] != 0.75 || m[0][2] != 0.25 {
		t.Errorf("source 0 row = %v, want [0 0.75 0.25]", m[0])
	}
	if m[2][0] != 1 {
		t.Errorf("source 2 row = %v, want [1 0 0]", m[2])
	}
	for d, w := range m[1] {
		if w != 0 {
			t.Errorf("silent source 1 has weight %g to %d", w, d)
		}
	}
	if _, err := tr.Matrix(2); err == nil {
		t.Error("trace matrix accepted out-of-range endpoints")
	}
}

func TestParsePattern(t *testing.T) {
	for _, p := range []Pattern{Uniform, Hotspot, Permutation, Streaming} {
		got, err := ParsePattern(p.String())
		if err != nil || got != p {
			t.Errorf("ParsePattern(%q) = %v, %v", p.String(), got, err)
		}
	}
	if _, err := ParsePattern("tornado"); err == nil {
		t.Error("ParsePattern accepted an unknown workload")
	}
}

func TestHotspotFractionValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Pattern = Hotspot
	if err := cfg.Validate(); err != nil {
		t.Fatalf("default hotspot config invalid: %v", err)
	}
	for _, frac := range []float64{0, -0.1, 1, 1.5} {
		c := cfg
		c.HotspotFraction = frac
		if err := c.Validate(); err == nil {
			t.Errorf("hotspot fraction %g accepted", frac)
		}
	}
	// The fraction is irrelevant — and unchecked — for other patterns.
	c := cfg
	c.Pattern = Uniform
	c.HotspotFraction = 0
	if err := c.Validate(); err != nil {
		t.Errorf("uniform config rejected over unused hotspot fraction: %v", err)
	}
}

func TestPercentileEdges(t *testing.T) {
	nan := math.NaN()
	cases := []struct {
		name   string
		sorted []float64
		q      float64
		want   float64
	}{
		{"empty", nil, 0.5, 0},
		{"empty q=1", []float64{}, 1, 0},
		{"single q=0", []float64{7}, 0, 7},
		{"single q=0.5", []float64{7}, 0.5, 7},
		{"single q=1", []float64{7}, 1, 7},
		{"q=0 is min", []float64{1, 2, 3, 4}, 0, 1},
		{"q=1 is max", []float64{1, 2, 3, 4}, 1, 4},
		{"q below 0 clamps", []float64{1, 2, 3, 4}, -0.5, 1},
		{"q above 1 clamps", []float64{1, 2, 3, 4}, 1.5, 4},
		{"NaN q floors", []float64{1, 2, 3, 4}, nan, 1},
		{"interior lower nearest rank", []float64{1, 2, 3, 4}, 0.5, 2},
		{"p99 of 4", []float64{1, 2, 3, 4}, 0.99, 3},
	}
	for _, c := range cases {
		if got := percentile(c.sorted, c.q); got != c.want {
			t.Errorf("%s: percentile(%v, %g) = %g, want %g", c.name, c.sorted, c.q, got, c.want)
		}
	}
}
