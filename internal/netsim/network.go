package netsim

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"photonoc/internal/core"
	"photonoc/internal/noc"
)

// NetConfig drives one network-scale discrete-event simulation: a built
// topology, the per-link operating points chosen by noc.Decide (the engine
// layer solves them through its shared LRU and passes them in, so the
// simulator's scheme/DAC decisions are bit-identical to the analytic
// evaluator's), and a synthetic workload drawn from a traffic matrix.
type NetConfig struct {
	// Net is the compiled topology the messages traverse.
	Net *noc.Network
	// Decisions are the per-link operating points in link-ID order, as
	// produced by noc.Decide. Every link must be feasible: an infeasible
	// link has no configured scheme to simulate.
	Decisions []noc.LinkDecision
	// Traffic is the row-normalized destination distribution each source
	// samples; nil means uniform. Only message generation reads it —
	// trace replays carry their own destinations.
	Traffic noc.Matrix
	// MessageBits is the payload per message (0 = 4 KiB, the analytic
	// model's default).
	MessageBits int
	// InjectionRateBitsPerSec is the offered payload per active tile.
	InjectionRateBitsPerSec float64
	// Messages is the number of messages to inject across all sources
	// (0 = 20000).
	Messages int
	// Seed makes runs reproducible: same seed ⇒ bit-identical results.
	Seed int64
	// MaxQueueDepth bounds each link's occupancy (waiting + in service);
	// an arrival finding the buffer full is dropped and counted. 0 means
	// unbounded queues — the configuration that exposes saturation as
	// unbounded queue growth.
	MaxQueueDepth int
}

// validateSim checks the fields the replay core uses: the network, its
// decisions and the queue bound. Trace replays carry their own arrival
// times, destinations and payload sizes, so the workload-generation fields
// (Traffic, rate, Messages, MessageBits) are deliberately not required
// here — RunNetworkTrace accepts a zero-generation configuration.
func (c NetConfig) validateSim() (NetConfig, error) {
	if c.Net == nil {
		return c, fmt.Errorf("netsim: nil network")
	}
	if len(c.Decisions) != c.Net.NumLinks() {
		return c, fmt.Errorf("netsim: %d link decisions for %d links", len(c.Decisions), c.Net.NumLinks())
	}
	for i := range c.Decisions {
		if !c.Decisions[i].Feasible {
			return c, fmt.Errorf("netsim: link %d has no feasible scheme: %s", i, c.Decisions[i].InfeasibleReason)
		}
	}
	if c.MaxQueueDepth < 0 {
		return c, fmt.Errorf("netsim: negative max queue depth %d", c.MaxQueueDepth)
	}
	return c, nil
}

// withDefaults is validateSim plus the workload-generation fields
// RecordNetworkTrace consumes, with their defaults resolved.
func (c NetConfig) withDefaults() (NetConfig, error) {
	c, err := c.validateSim()
	if err != nil {
		return c, err
	}
	if c.Traffic == nil {
		c.Traffic = noc.UniformMatrix(c.Net.Tiles())
	}
	if err := c.Traffic.Validate(c.Net.Tiles()); err != nil {
		return c, err
	}
	if c.MessageBits == 0 {
		c.MessageBits = 4096 * 8
	}
	if c.MessageBits < 0 {
		return c, fmt.Errorf("netsim: message size %d must be positive", c.MessageBits)
	}
	if math.IsNaN(c.InjectionRateBitsPerSec) || math.IsInf(c.InjectionRateBitsPerSec, 0) || c.InjectionRateBitsPerSec <= 0 {
		return c, fmt.Errorf("netsim: injection rate %g must be a positive finite number", c.InjectionRateBitsPerSec)
	}
	if c.Messages == 0 {
		c.Messages = 20000
	}
	if c.Messages < 0 {
		return c, fmt.Errorf("netsim: message count %d must be positive", c.Messages)
	}
	return c, nil
}

// NetLinkStats is the per-link view of a network simulation.
type NetLinkStats struct {
	// Link is the link ID (noc.Link order).
	Link int
	// Messages served (drops excluded).
	Messages int64
	// Drops counts arrivals rejected by a full queue (MaxQueueDepth > 0).
	Drops int64
	// Utilization is the fraction of simulated time the link transmitted.
	Utilization float64
	// MeanQueueWaitSec is the mean arbitration wait of served messages.
	MeanQueueWaitSec float64
	// MeanQueueDepth is the time-averaged number of waiting messages
	// (the integral of the queue length over the run, by Little's law the
	// sum of all waits over the simulated time).
	MeanQueueDepth float64
	// MaxQueueDepth is the largest occupancy (waiting + in service) any
	// arrival observed.
	MaxQueueDepth int
	// ActiveEnergyJ is the transfer-scaled energy spent on this link
	// (modulators + interfaces; standing laser energy is accounted
	// network-wide).
	ActiveEnergyJ float64
}

// NetResults summarizes one network simulation.
type NetResults struct {
	// Injected counts generated messages; Messages the delivered ones;
	// Dropped the difference lost to full queues.
	Injected int64
	Messages int64
	Dropped  int64
	// DeliveredBits is the delivered payload.
	DeliveredBits int64
	// SimTimeSec is the horizon: the end of the last transmission or
	// delivery, whichever is later. On lossless runs that is the last
	// delivery; with bounded queues a message can still be transmitting on
	// an early hop (before being dropped downstream) after the final
	// delivery, and the horizon covers it so utilizations stay ≤ 1.
	SimTimeSec float64
	// End-to-end latency statistics (injection → delivery) in seconds.
	MeanLatencySec float64
	P50LatencySec  float64
	P95LatencySec  float64
	P99LatencySec  float64
	MaxLatencySec  float64
	// MeanQueueWaitSec is the mean total arbitration wait per delivered
	// message, summed over its hops.
	MeanQueueWaitSec float64
	// MeanHops is the traffic-weighted route length.
	MeanHops float64
	// Energy split: lasers hold their standing (DAC-quantized) power for
	// the whole run; modulator and interface energy scale with each
	// link's transmission time — the same accounting as noc.Aggregate.
	LaserEnergyJ     float64
	ModulatorEnergyJ float64
	InterfaceEnergyJ float64
	TotalEnergyJ     float64
	// EnergyPerBitJ is total energy over delivered payload bits.
	EnergyPerBitJ float64
	// ThroughputBitsPerSec is delivered payload over simulated time.
	ThroughputBitsPerSec float64
	// MeanUtilization and MaxUtilization summarize the per-link busy
	// fractions.
	MeanUtilization float64
	MaxUtilization  float64
	// SchemeUse counts links per configured scheme name (the simulator
	// configures each link once, from its decision).
	SchemeUse map[string]int
	// Decisions echoes the per-link operating points the run used.
	Decisions []noc.LinkDecision
	// PerLink breaks the run down by link.
	PerLink []NetLinkStats
}

// netEvent is one message arrival at a link (or at its final reader).
// seq breaks exact time ties first-scheduled-first-served, which pins the
// event order — and with it every statistic — for a fixed seed.
type netEvent struct {
	at  float64
	seq uint64
	msg int32 // index into the run's message table
	hop int16 // position in the message's route
}

// before orders hop arrivals by (time, schedule sequence).
func (e netEvent) before(o netEvent) bool {
	if e.at != o.at {
		return e.at < o.at
	}
	return e.seq < o.seq
}

// RecordNetworkTrace generates the arrival stream the configured workload
// would produce — per-source Poisson processes at the configured injection
// rate, destinations drawn from the traffic matrix — without simulating the
// network. RunNetwork is exactly this followed by RunNetworkTrace, so
// recorded traces replay to identical results.
func RecordNetworkTrace(ctx context.Context, cfg NetConfig) (Trace, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	tiles := cfg.Net.Tiles()
	srcRate := cfg.InjectionRateBitsPerSec / float64(cfg.MessageBits)

	// Per-source cumulative destination distributions, diagonal excluded.
	type cdf struct {
		cum []float64 // cumulative weight over dsts
		dst []int
	}
	cdfs := make([]cdf, tiles)
	for s := 0; s < tiles; s++ {
		var c cdf
		total := 0.0
		for d := 0; d < tiles; d++ {
			if w := cfg.Traffic[s][d]; w > 0 && d != s {
				total += w
				c.cum = append(c.cum, total)
				c.dst = append(c.dst, d)
			}
		}
		cdfs[s] = c
	}

	pick := func(s int) int {
		c := &cdfs[s]
		r := rng.Float64() * c.cum[len(c.cum)-1]
		i := sort.SearchFloat64s(c.cum, r)
		if i == len(c.dst) { // r landed exactly on the total
			i--
		}
		return c.dst[i]
	}

	events := make(eventHeap, 0, tiles)
	for s := 0; s < tiles; s++ {
		if len(cdfs[s].dst) == 0 {
			continue // silent source
		}
		at := rng.ExpFloat64() / srcRate
		events.push(arrivalEvent{at: at, msg: message{src: s, dst: pick(s), arrival: at, bits: cfg.MessageBits}})
	}
	if len(events) == 0 {
		return nil, fmt.Errorf("netsim: traffic matrix has no active source")
	}
	tr := make(Trace, 0, cfg.Messages)
	for len(events) > 0 && len(tr) < cfg.Messages {
		if len(tr)%4096 == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		ev := events.pop()
		s := ev.msg.src
		at := ev.at + rng.ExpFloat64()/srcRate
		events.push(arrivalEvent{at: at, msg: message{src: s, dst: pick(s), arrival: at, bits: cfg.MessageBits}})
		tr = append(tr, TraceEvent{TimeSec: ev.msg.arrival, Src: ev.msg.src, Dst: ev.msg.dst, Bits: ev.msg.bits})
	}
	// No re-sort needed: the heap pops arrivals in chronological order.
	return tr, nil
}

// RunNetwork generates the configured workload and simulates it. It is
// exactly RecordNetworkTrace followed by RunNetworkTrace.
func RunNetwork(ctx context.Context, cfg NetConfig) (NetResults, error) {
	tr, err := RecordNetworkTrace(ctx, cfg)
	if err != nil {
		return NetResults{}, err
	}
	return RunNetworkTrace(ctx, cfg, tr)
}

// netMsg is one in-flight network message of a simulation run.
type netMsg struct {
	injected float64
	waited   float64 // accumulated queue wait across hops
	src, dst int32
	bits     int
}

// RunNetworkTrace replays a message trace through the network: every
// message crosses its route's links in order (XY on the mesh, single hop on
// bus/crossbar/ring). Each link is one MWSR server: transfers serialize in
// arrival order at the link's decided capacity (wavelengths × Fmod / CT);
// the fixed token-arbitration cost and the waveguide flight time are
// charged per hop as pipeline latency that does not occupy the medium, so
// the per-link occupancy process is exactly the M/D/1 abstraction the
// analytic aggregates assume — that is what makes the two comparable
// statistic for statistic. The run is single-threaded and seeded, hence
// bit-identical across repetitions regardless of who solved the decisions.
func RunNetworkTrace(ctx context.Context, cfg NetConfig, tr Trace) (NetResults, error) {
	cfg, err := cfg.validateSim()
	if err != nil {
		return NetResults{}, err
	}
	tiles := cfg.Net.Tiles()
	if err := tr.Validate(tiles); err != nil {
		return NetResults{}, err
	}

	// Route table and per-link derived constants, resolved once.
	routes := make([][][]int, tiles)
	for s := 0; s < tiles; s++ {
		routes[s] = make([][]int, tiles)
		for d := 0; d < tiles; d++ {
			if s == d {
				continue
			}
			if routes[s][d], err = cfg.Net.Route(s, d); err != nil {
				return NetResults{}, err
			}
		}
	}
	links := cfg.Net.Links()
	nLinks := len(links)
	perBit := make([]float64, nLinks) // serialization seconds per payload bit
	prop := make([]float64, nLinks)
	for i := range links {
		perBit[i] = 1 / links[i].CapacityBitsPerSec(cfg.Decisions[i].Eval.CT)
		prop[i] = links[i].PropagationDelaySec()
	}

	// Per-link server state.
	nextFree := make([]float64, nLinks)
	busy := make([]float64, nLinks)
	waitSum := make([]float64, nLinks)
	served := make([]int64, nLinks)
	drops := make([]int64, nLinks)
	maxDepth := make([]int, nLinks)
	// departed[l] holds the departure times of messages still occupying
	// link l (waiting or in service), oldest first — a ring-free FIFO used
	// only to read the instantaneous occupancy at arrivals.
	departed := make([][]float64, nLinks)
	head := make([]int, nLinks)

	msgs := make([]netMsg, len(tr))
	var events simHeap[netEvent]
	var seq uint64
	for i, ev := range tr {
		msgs[i] = netMsg{injected: ev.TimeSec, src: int32(ev.Src), dst: int32(ev.Dst), bits: ev.Bits}
		events.push(netEvent{at: ev.TimeSec, seq: seq, msg: int32(i), hop: 0})
		seq++
	}

	res := NetResults{
		Injected:  int64(len(tr)),
		SchemeUse: make(map[string]int, len(cfg.Decisions)),
		Decisions: append([]noc.LinkDecision(nil), cfg.Decisions...),
	}
	for i := range cfg.Decisions {
		res.SchemeUse[cfg.Decisions[i].Eval.Code.Name()]++
	}

	latencies := make([]float64, 0, len(tr))
	var hopSum int64
	var queueWaitTotal float64
	processed := 0
	for len(events) > 0 {
		if processed%4096 == 0 {
			if err := ctx.Err(); err != nil {
				return NetResults{}, err
			}
		}
		processed++
		ev := events.pop()
		m := &msgs[ev.msg]
		route := routes[m.src][m.dst]
		l := route[ev.hop]

		// Drop the expired occupants, then test the buffer bound.
		dep := departed[l]
		for head[l] < len(dep) && dep[head[l]] <= ev.at {
			head[l]++
		}
		occupancy := len(dep) - head[l]
		if cfg.MaxQueueDepth > 0 && occupancy >= cfg.MaxQueueDepth {
			drops[l]++
			res.Dropped++
			continue
		}
		if occupancy+1 > maxDepth[l] {
			maxDepth[l] = occupancy + 1
		}

		start := ev.at
		if nextFree[l] > start {
			start = nextFree[l]
		}
		transfer := float64(m.bits) * perBit[l]
		wait := start - ev.at
		nextFree[l] = start + transfer
		busy[l] += transfer
		waitSum[l] += wait
		served[l]++
		m.waited += wait
		if head[l] > 4096 && head[l]*2 > len(dep) {
			// Compact the occupancy FIFO once the dead prefix dominates.
			departed[l] = append(dep[:0], dep[head[l]:]...)
			head[l] = 0
		}
		departed[l] = append(departed[l], nextFree[l])

		// Token grant and waveguide flight are pipeline latency on the
		// message's clock, not server occupancy.
		out := start + transfer + core.TokenOverheadSec + prop[l]
		if int(ev.hop)+1 < len(route) {
			events.push(netEvent{at: out, seq: seq, msg: ev.msg, hop: ev.hop + 1})
			seq++
			continue
		}
		// Delivered.
		res.Messages++
		res.DeliveredBits += int64(m.bits)
		hopSum += int64(len(route))
		queueWaitTotal += m.waited
		latencies = append(latencies, out-m.injected)
		if out > res.SimTimeSec {
			res.SimTimeSec = out
		}
	}

	// The horizon must cover every transmission, not just deliveries: with
	// bounded queues a message can be served on an early hop after the last
	// delivery and then be dropped downstream, and clipping the horizon at
	// the last delivery would report utilizations above 1 and undercount
	// standing laser time. Lossless runs are unaffected (the final service
	// on any link always precedes that message's own delivery).
	for _, free := range nextFree {
		if free > res.SimTimeSec {
			res.SimTimeSec = free
		}
	}

	// Energy: standing lasers for the whole horizon, activity-scaled
	// modulators and interfaces — noc.Aggregate's model, so matched
	// utilizations imply matched power.
	res.PerLink = make([]NetLinkStats, nLinks)
	for i := range links {
		l := &links[i]
		d := &cfg.Decisions[i]
		nw := float64(len(l.Lambdas))
		laserE := d.LaserPowerW * nw * res.SimTimeSec
		modE := l.Config.ModulatorPowerW * nw * busy[i]
		intfE := l.Config.InterfacePowerFor(d.Eval.Code).TotalW() * busy[i]
		res.LaserEnergyJ += laserE
		res.ModulatorEnergyJ += modE
		res.InterfaceEnergyJ += intfE

		st := NetLinkStats{Link: i, Messages: served[i], Drops: drops[i], MaxQueueDepth: maxDepth[i], ActiveEnergyJ: modE + intfE}
		if res.SimTimeSec > 0 {
			st.Utilization = busy[i] / res.SimTimeSec
			st.MeanQueueDepth = waitSum[i] / res.SimTimeSec
		}
		if served[i] > 0 {
			st.MeanQueueWaitSec = waitSum[i] / float64(served[i])
		}
		res.PerLink[i] = st
		if st.Utilization > res.MaxUtilization {
			res.MaxUtilization = st.Utilization
		}
		res.MeanUtilization += st.Utilization / float64(nLinks)
	}
	res.TotalEnergyJ = res.LaserEnergyJ + res.ModulatorEnergyJ + res.InterfaceEnergyJ

	if len(latencies) > 0 {
		sort.Float64s(latencies)
		var sum float64
		for _, l := range latencies {
			sum += l
		}
		n := float64(len(latencies))
		res.MeanLatencySec = sum / n
		res.P50LatencySec = percentile(latencies, 0.50)
		res.P95LatencySec = percentile(latencies, 0.95)
		res.P99LatencySec = percentile(latencies, 0.99)
		res.MaxLatencySec = latencies[len(latencies)-1]
		res.MeanQueueWaitSec = queueWaitTotal / n
		res.MeanHops = float64(hopSum) / n
	}
	if res.DeliveredBits > 0 {
		res.EnergyPerBitJ = res.TotalEnergyJ / float64(res.DeliveredBits)
	}
	if res.SimTimeSec > 0 {
		res.ThroughputBitsPerSec = float64(res.DeliveredBits) / res.SimTimeSec
	}
	return res, nil
}
