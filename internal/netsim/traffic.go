package netsim

import "math/rand"

// trafficGenerator produces each source's next message according to the
// configured pattern.
type trafficGenerator struct {
	cfg          Config
	rng          *rand.Rand
	srcRate      float64
	baseTransfer float64
	n            int
}

func newTrafficGenerator(cfg Config, rng *rand.Rand, srcRate, baseTransfer float64) *trafficGenerator {
	return &trafficGenerator{
		cfg:          cfg,
		rng:          rng,
		srcRate:      srcRate,
		baseTransfer: baseTransfer,
		n:            cfg.Link.Channel.Topo.ONIs,
	}
}

// next returns the source's next arrival after `now`, or ok=false when the
// source emits nothing (never happens with the current patterns).
func (g *trafficGenerator) next(src int, now float64) (arrivalEvent, bool) {
	var at float64
	switch g.cfg.Pattern {
	case Streaming:
		if src%2 == 0 {
			// Streaming sources are periodic with 20% jitter.
			period := 1 / g.srcRate
			at = now + period*(0.9+0.2*g.rng.Float64())
		} else {
			at = now + g.rng.ExpFloat64()/g.srcRate
		}
	default:
		at = now + g.rng.ExpFloat64()/g.srcRate
	}

	dst := g.pickDestination(src)
	m := message{
		src:     src,
		dst:     dst,
		arrival: at,
		bits:    g.cfg.MessageBits,
	}
	if g.cfg.DeadlineSlack > 0 {
		slack := g.cfg.DeadlineSlack
		if g.cfg.Pattern == Streaming && src%2 == 0 {
			// Streaming flows carry the tight deadlines.
			slack = max(1.05, slack/2)
		}
		m.deadline = at + slack*g.baseTransfer
	}
	return arrivalEvent{at: at, msg: m}, true
}

// pickDestination applies the pattern's destination distribution.
func (g *trafficGenerator) pickDestination(src int) int {
	switch g.cfg.Pattern {
	case Hotspot:
		if src != g.cfg.HotspotNode && g.rng.Float64() < g.cfg.HotspotFraction {
			return g.cfg.HotspotNode
		}
		return g.uniformOther(src)
	case Permutation:
		dst := (src + g.n/2) % g.n
		if dst == src {
			dst = (dst + 1) % g.n
		}
		return dst
	default:
		return g.uniformOther(src)
	}
}

// uniformOther picks a uniformly random destination other than src.
func (g *trafficGenerator) uniformOther(src int) int {
	dst := g.rng.Intn(g.n - 1)
	if dst >= src {
		dst++
	}
	return dst
}

func max(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
