package netsim

import "testing"

func TestPerChannelStatsConsistency(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Messages = 3000
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerChannel) != 12 {
		t.Fatalf("per-channel entries = %d", len(res.PerChannel))
	}
	var msgs int64
	var active float64
	var busySum float64
	for i, ch := range res.PerChannel {
		if ch.Channel != i {
			t.Errorf("channel index %d at slot %d", ch.Channel, i)
		}
		msgs += ch.Messages
		active += ch.ActiveEnergyJ
		busySum += ch.BusyFraction
		if ch.BusyFraction < 0 || ch.BusyFraction > 1 {
			t.Errorf("channel %d busy fraction %g", i, ch.BusyFraction)
		}
	}
	if msgs != res.Messages {
		t.Errorf("per-channel messages %d != total %d", msgs, res.Messages)
	}
	wantActive := res.LaserEnergyJ + res.ModulatorEnergyJ + res.InterfaceEnergyJ
	if d := active - wantActive; d > 1e-12 || d < -1e-12 {
		t.Errorf("per-channel energy %g != active total %g", active, wantActive)
	}
	if d := busySum/12 - res.ChannelUtilization; d > 1e-9 || d < -1e-9 {
		t.Errorf("mean busy fraction %g != utilization %g", busySum/12, res.ChannelUtilization)
	}
}

func TestPerChannelHotspotConcentration(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Messages = 4000
	cfg.Load = 0.2
	cfg.Pattern = Hotspot
	cfg.HotspotNode = 5
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hot := res.PerChannel[5]
	var others int64
	for i, ch := range res.PerChannel {
		if i != 5 {
			others += ch.Messages
		}
	}
	meanOther := float64(others) / 11
	// 30% of all traffic goes to the hot node: it should see >3x the mean.
	if float64(hot.Messages) < 3*meanOther {
		t.Errorf("hot channel got %d messages, mean other %g — concentration missing", hot.Messages, meanOther)
	}
	// And it burns proportionally more energy.
	var maxOtherE float64
	for i, ch := range res.PerChannel {
		if i != 5 && ch.ActiveEnergyJ > maxOtherE {
			maxOtherE = ch.ActiveEnergyJ
		}
	}
	if hot.ActiveEnergyJ <= maxOtherE {
		t.Error("hot channel should dominate active energy")
	}
}
