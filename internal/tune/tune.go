// Package tune is the design-space autotuner: a multi-objective particle
// swarm over the joint NoC design space — topology family, tile count,
// mesh shape, wavelength-grid size, scheme-roster subset and DAC
// resolution — searching for Pareto-optimal (energy/bit, p99 latency,
// saturation throughput) operating points.
//
// Each particle is a continuous position in [0, 1]^6 decoded into a
// discrete design (see encode.go). Every generation decodes the whole
// swarm and evaluates it as one Engine.NetworkBatch population, so
// neighboring particles ride the engine's per-worker incremental sessions
// and the fingerprint-diff reuse of the zero-alloc fast path. Survivors
// feed a bounded Pareto archive with crowding-distance pruning; the
// archive's spread leaders pull the swarm's social term.
//
// Campaigns are deterministic from a root seed: every particle owns a
// derived RNG stream (mc.DeriveSeed, the same splitmix64 contract as the
// Monte-Carlo and traffic layers), all draws happen on the driver
// goroutine in particle order, and batch evaluation is bit-identical
// regardless of the engine's worker count — so fronts are reproducible
// across Workers=1/2/4 runs and every archived point can be re-derived by
// an independent Engine.Network evaluation of its spec.
package tune

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"

	"photonoc/internal/apierr"
	"photonoc/internal/core"
	"photonoc/internal/ecc"
	"photonoc/internal/engine"
	"photonoc/internal/manager"
	"photonoc/internal/mc"
	"photonoc/internal/netsim"
	"photonoc/internal/noc"
)

// Canonical PSO constriction coefficients (Clerc & Kennedy), the defaults
// for the velocity update v' = w·v + c1·r1·(pbest−x) + c2·r2·(leader−x).
const (
	defaultInertia   = 0.7298
	defaultCognitive = 1.49618
	defaultSocial    = 1.49618
	// maxVelocity clamps each velocity component to half the unit cube, so
	// one step never overshoots more than the full choice range.
	maxVelocity = 0.5
)

// Campaign-shape defaults applied when the corresponding Options field is
// zero. Exported because remote clients derive the expected stream length
// (Generations + summary) from the same defaults the server applies.
const (
	DefaultParticles   = 16
	DefaultGenerations = 20
	DefaultArchiveCap  = 64
)

// Options parameterizes a campaign. The zero value of every field has a
// usable default except TargetBER, which is required.
type Options struct {
	// Seed is the campaign root seed; per-particle streams are derived
	// from it (default 1).
	Seed int64
	// Particles is the swarm size (default 16).
	Particles int
	// Generations is the campaign length (default 20).
	Generations int
	// ArchiveCap bounds the Pareto archive; crowding-distance pruning
	// keeps the spread when the front outgrows it (default 64).
	ArchiveCap int

	// TargetBER is the post-decoding BER every candidate must meet.
	// Required.
	TargetBER float64
	// Objective picks each link's scheme among feasible evaluations. The
	// zero value is min-power, the paper's headline rule; the HTTP and CLI
	// surfaces default to min-energy and must set it explicitly.
	Objective manager.Objective
	// Pattern fixes the campaign traffic pattern (default uniform).
	// HotspotNode and HotspotFraction apply to the hotspot pattern only
	// and follow netsim's validation.
	Pattern         netsim.Pattern
	HotspotNode     int
	HotspotFraction float64
	// MessageBits sizes the latency model's serialization and queueing
	// terms (0 = the evaluator's 4 KiB default).
	MessageBits int

	// The design space: choice lists per knob. Defaults: Kinds bus, ring
	// and mesh; Tiles {8, 12, 16}; Wavelengths {0} (the engine's grid);
	// Rosters the engine roster plus one single-scheme roster per code;
	// DACBits {0, 4, 6, 8} (0 = exact analytic laser settings).
	Kinds       []noc.Kind
	Tiles       []int
	Wavelengths []int
	Rosters     [][]ecc.Code
	DACBits     []int

	// PSO coefficients (defaults: the Clerc constriction set).
	Inertia   float64
	Cognitive float64
	Social    float64

	// OnGeneration, when non-nil, receives the archive front after each
	// generation's evaluation (gen counts from 0). Returning an error
	// aborts the campaign with that error. The slice is a deep copy.
	OnGeneration func(gen int, front []Point) error
}

// Point is one archived design point: the decoded spec, the encoded
// position that produced it, and its three objective metrics.
type Point struct {
	Spec     CandidateSpec
	Position []float64
	// EnergyPerBitJ is total network power over delivered payload.
	EnergyPerBitJ float64
	// P99LatencySec is the traffic-weighted 99th-percentile latency at
	// half the saturation injection rate.
	P99LatencySec float64
	// SaturationBitsPerSec is the per-tile saturation injection rate.
	SaturationBitsPerSec float64
}

// clone deep-copies the point.
func (p Point) clone() Point {
	p.Position = append([]float64(nil), p.Position...)
	p.Spec.Roster = append([]string(nil), p.Spec.Roster...)
	return p
}

// Result is a finished campaign.
type Result struct {
	// Front is the final archive: mutually non-dominated points in the
	// canonical (energy, latency, −saturation) order.
	Front []Point
	// Generations and Particles echo the campaign shape.
	Generations int
	Particles   int
	// Evaluated counts candidate evaluations (particles × generations);
	// Infeasible counts the ones that produced no archivable point —
	// designs the wavelength grid cannot carry, rosters that cannot close
	// a link at the target BER, DACs that cannot program the winner.
	Evaluated  int
	Infeasible int
}

// particle is one swarm member: its RNG stream, kinematic state and
// personal best.
type particle struct {
	rng     *rand.Rand
	pos     []float64
	vel     []float64
	best    []float64
	bestObj [3]float64
	hasBest bool
}

// resolve validates the options, applies defaults and builds the campaign
// space.
func (o Options) resolve(eng *engine.Engine) (Options, *space, error) {
	fail := func(format string, args ...any) (Options, *space, error) {
		return o, nil, fmt.Errorf("%w: tune: %s", apierr.ErrInvalidInput, fmt.Sprintf(format, args...))
	}
	if math.IsNaN(o.TargetBER) || o.TargetBER <= 0 || o.TargetBER >= 0.5 {
		return fail("target BER %g outside (0, 0.5)", o.TargetBER)
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Particles == 0 {
		o.Particles = DefaultParticles
	}
	if o.Generations == 0 {
		o.Generations = DefaultGenerations
	}
	if o.ArchiveCap == 0 {
		o.ArchiveCap = DefaultArchiveCap
	}
	if o.Particles < 1 || o.Generations < 1 || o.ArchiveCap < 1 {
		return fail("particles %d, generations %d and archive cap %d must be positive", o.Particles, o.Generations, o.ArchiveCap)
	}
	if o.Inertia == 0 {
		o.Inertia = defaultInertia
	}
	if o.Cognitive == 0 {
		o.Cognitive = defaultCognitive
	}
	if o.Social == 0 {
		o.Social = defaultSocial
	}
	if o.Kinds == nil {
		o.Kinds = []noc.Kind{noc.Bus, noc.Ring, noc.Mesh}
	}
	if o.Tiles == nil {
		o.Tiles = []int{8, 12, 16}
	}
	if o.Wavelengths == nil {
		o.Wavelengths = []int{0}
	}
	if o.Rosters == nil {
		o.Rosters = defaultRosters(eng.Schemes())
	}
	if o.DACBits == nil {
		o.DACBits = []int{0, 4, 6, 8}
	}
	if len(o.Kinds) == 0 || len(o.Tiles) == 0 || len(o.Wavelengths) == 0 || len(o.Rosters) == 0 || len(o.DACBits) == 0 {
		return fail("every design-space choice list needs at least one entry")
	}
	o.Tiles = sortedInts(o.Tiles)
	o.Wavelengths = sortedInts(o.Wavelengths)
	o.DACBits = sortedInts(o.DACBits)
	for _, t := range o.Tiles {
		if t < 2 {
			return fail("tile choice %d must be at least 2", t)
		}
	}
	for _, w := range o.Wavelengths {
		if w < 0 {
			return fail("wavelength choice %d must be non-negative", w)
		}
	}
	for _, b := range o.DACBits {
		if b != 0 {
			if err := (manager.DAC{Bits: b, MaxOpticalW: manager.PaperDAC().MaxOpticalW}).Validate(); err != nil {
				return fail("DAC choice: %v", err)
			}
		}
	}
	for i, r := range o.Rosters {
		if len(r) == 0 {
			return fail("roster choice %d is empty", i)
		}
		for _, c := range r {
			if c == nil {
				return fail("roster choice %d holds a nil code", i)
			}
		}
	}
	if o.Pattern == netsim.Hotspot && o.HotspotNode >= o.Tiles[0] {
		return fail("hotspot node %d outside the smallest tile choice %d", o.HotspotNode, o.Tiles[0])
	}

	sp := &space{
		kinds:       o.Kinds,
		tiles:       o.Tiles,
		wavelengths: o.Wavelengths,
		rosters:     o.Rosters,
		dacBits:     o.DACBits,
		targetBER:   o.TargetBER,
		objective:   o.Objective,
		messageBits: o.MessageBits,
		pattern:     o.Pattern,
		hotNode:     o.HotspotNode,
		hotFrac:     o.HotspotFraction,
		engineCfg:   eng.Config(),
		dacMaxW:     manager.PaperDAC().MaxOpticalW,
		bases:       make(map[int]core.LinkConfig),
		dacs:        make(map[int]*manager.DAC),
		traffic:     make(map[int]noc.Matrix),
		divisors:    make(map[int][]int),
	}
	return o, sp, nil
}

// Run executes one campaign against the engine and returns the final
// Pareto front. It is deterministic from Options.Seed: same options and
// engine roster produce the identical Result regardless of the engine's
// worker count.
func Run(ctx context.Context, eng *engine.Engine, opts Options) (*Result, error) {
	opts, sp, err := opts.resolve(eng)
	if err != nil {
		return nil, err
	}

	parts := make([]*particle, opts.Particles)
	for i := range parts {
		p := &particle{
			rng:  rand.New(rand.NewSource(mc.DeriveSeed(opts.Seed, i))),
			pos:  make([]float64, dims),
			vel:  make([]float64, dims),
			best: make([]float64, dims),
		}
		for d := range p.pos {
			p.pos[d] = p.rng.Float64()
		}
		parts[i] = p
	}

	arch := &archive{cap: opts.ArchiveCap}
	res := &Result{Generations: opts.Generations, Particles: opts.Particles}
	cands := make([]engine.NetworkCandidate, opts.Particles)
	specs := make([]CandidateSpec, opts.Particles)

	for gen := 0; gen < opts.Generations; gen++ {
		for i, p := range parts {
			specs[i], cands[i], err = sp.decode(p.pos)
			if err != nil {
				return nil, fmt.Errorf("%w: tune: %v", apierr.ErrInvalidInput, err)
			}
		}
		results, err := eng.NetworkBatch(ctx, cands, engine.BatchOptions{ContinueOnError: true})
		var failed map[int]bool
		if err != nil {
			var be *engine.BatchErrors
			if !errors.As(err, &be) {
				return nil, err // terminal: cancellation, deadline, engine fault
			}
			failed = make(map[int]bool, len(be.Errors))
			for _, ce := range be.Errors {
				failed[ce.Index] = true
			}
		}

		for i, p := range parts {
			res.Evaluated++
			if failed[i] || !results[i].Feasible {
				res.Infeasible++
				continue
			}
			r := &results[i]
			pt := Point{
				Spec:                 specs[i],
				Position:             append([]float64(nil), p.pos...),
				EnergyPerBitJ:        r.EnergyPerBitJ,
				P99LatencySec:        r.P99LatencySec,
				SaturationBitsPerSec: r.SaturationInjectionBitsPerSec,
			}
			arch.add(pt)
			obj := objectives(&pt)
			switch {
			case !p.hasBest:
				p.hasBest = true
				copy(p.best, p.pos)
				p.bestObj = obj
			case dominates(obj, p.bestObj):
				copy(p.best, p.pos)
				p.bestObj = obj
			case dominates(p.bestObj, obj) || obj == p.bestObj:
				// Keep the incumbent.
			default:
				// Mutually non-dominated: the particle's own stream flips
				// the coin, so the choice is deterministic per seed.
				if p.rng.Intn(2) == 0 {
					copy(p.best, p.pos)
					p.bestObj = obj
				}
			}
		}

		// Canonicalize the archive order before any RNG touches it: leader
		// selection below indexes the sorted archive, so insertion order
		// (and whether a callback observed the front) never shifts draws.
		arch.sort()
		if opts.OnGeneration != nil {
			if err := opts.OnGeneration(gen, arch.front()); err != nil {
				return nil, err
			}
		}
		if gen == opts.Generations-1 {
			break
		}

		for _, p := range parts {
			var leader []float64
			if len(arch.points) > 0 {
				leader = arch.points[p.rng.Intn(len(arch.points))].Position
			}
			for d := 0; d < dims; d++ {
				r1, r2 := p.rng.Float64(), p.rng.Float64()
				pb, gb := p.pos[d], p.pos[d]
				if p.hasBest {
					pb = p.best[d]
				}
				if leader != nil {
					gb = leader[d]
				}
				v := opts.Inertia*p.vel[d] + opts.Cognitive*r1*(pb-p.pos[d]) + opts.Social*r2*(gb-p.pos[d])
				v = math.Max(-maxVelocity, math.Min(maxVelocity, v))
				x := p.pos[d] + v
				// Reflect off the cube walls so boundary choices stay
				// reachable without piling probability on the clamp.
				if x < 0 {
					x, v = -x, -v
				}
				if x > 1 {
					x, v = 2-x, -v
				}
				p.vel[d] = v
				p.pos[d] = math.Max(0, math.Min(1, x))
			}
		}
	}

	res.Front = arch.front()
	return res, nil
}
