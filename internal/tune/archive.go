package tune

import (
	"math"
	"sort"
)

// objectives extracts the minimized objective vector of a point:
// energy per bit, p99 latency, and negated saturation throughput (higher
// saturation headroom is better, so it is minimized negated).
func objectives(p *Point) [3]float64 {
	return [3]float64{p.EnergyPerBitJ, p.P99LatencySec, -p.SaturationBitsPerSec}
}

// dominates reports weak Pareto dominance: a is no worse than b in every
// objective and strictly better in at least one.
func dominates(a, b [3]float64) bool {
	better := false
	for k := range a {
		if a[k] > b[k] {
			return false
		}
		if a[k] < b[k] {
			better = true
		}
	}
	return better
}

// archive is the bounded Pareto archive of a campaign: a mutually
// non-dominated point set with crowding-distance pruning. All operations
// are deterministic — insertion order never affects the final set beyond
// the first-come rule for objective-identical points.
type archive struct {
	cap    int
	points []Point
}

// add offers a point to the archive. It is rejected when an archived point
// dominates it or duplicates its objective vector (first-come wins, which
// keeps re-discovered designs from churning the front); otherwise every
// archived point it dominates is evicted, the point is inserted, and the
// archive is pruned back to capacity by crowding distance.
func (a *archive) add(p Point) bool {
	obj := objectives(&p)
	for i := range a.points {
		q := objectives(&a.points[i])
		if q == obj || dominates(q, obj) {
			return false
		}
	}
	keep := a.points[:0]
	for i := range a.points {
		if !dominates(obj, objectives(&a.points[i])) {
			keep = append(keep, a.points[i])
		}
	}
	a.points = append(keep, p)
	for a.cap > 0 && len(a.points) > a.cap {
		a.evictMostCrowded()
	}
	return true
}

// evictMostCrowded removes the point with the smallest crowding distance
// (NSGA-II style: per-objective normalized nearest-neighbor gap, boundary
// points get +Inf). Ties break on the sorted order, so pruning is
// deterministic.
func (a *archive) evictMostCrowded() {
	a.sort()
	n := len(a.points)
	dist := make([]float64, n)
	objs := make([][3]float64, n)
	for i := range a.points {
		objs[i] = objectives(&a.points[i])
	}
	idx := make([]int, n)
	for k := 0; k < 3; k++ {
		for i := range idx {
			idx[i] = i
		}
		sort.SliceStable(idx, func(i, j int) bool { return objs[idx[i]][k] < objs[idx[j]][k] })
		span := objs[idx[n-1]][k] - objs[idx[0]][k]
		dist[idx[0]] = math.Inf(1)
		dist[idx[n-1]] = math.Inf(1)
		if span == 0 {
			continue
		}
		for i := 1; i < n-1; i++ {
			if !math.IsInf(dist[idx[i]], 1) {
				dist[idx[i]] += (objs[idx[i+1]][k] - objs[idx[i-1]][k]) / span
			}
		}
	}
	evict := 0
	for i := 1; i < n; i++ {
		if dist[i] < dist[evict] {
			evict = i
		}
	}
	a.points = append(a.points[:evict], a.points[evict+1:]...)
}

// sort orders the archive lexicographically by objective vector, then by
// decoded design, so every exported front snapshot is canonical.
func (a *archive) sort() {
	sort.SliceStable(a.points, func(i, j int) bool {
		oi, oj := objectives(&a.points[i]), objectives(&a.points[j])
		for k := range oi {
			if oi[k] != oj[k] {
				return oi[k] < oj[k]
			}
		}
		return a.points[i].Spec.less(&a.points[j].Spec)
	})
}

// front returns a sorted deep copy of the archive, safe to hand to
// callbacks and results.
func (a *archive) front() []Point {
	a.sort()
	out := make([]Point, len(a.points))
	for i := range a.points {
		out[i] = a.points[i].clone()
	}
	return out
}
