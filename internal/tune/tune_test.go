package tune

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"photonoc/internal/core"
	"photonoc/internal/ecc"
	"photonoc/internal/engine"
	"photonoc/internal/manager"
	"photonoc/internal/noc"
)

func newTestEngine(t *testing.T, workers int) *engine.Engine {
	t.Helper()
	e, err := engine.New(
		engine.WithConfig(core.DefaultConfig()),
		engine.WithSchemes(ecc.PaperSchemes()...),
		engine.WithWorkers(workers),
	)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// acceptanceOptions is the ISSUE's acceptance campaign: 8 particles × 10
// generations over (bus, ring, mesh) × roster subsets × DAC resolutions.
func acceptanceOptions() Options {
	return Options{
		Seed:        7,
		Particles:   8,
		Generations: 10,
		TargetBER:   1e-11,
	}
}

// TestRunDeterministicAcrossWorkers is the acceptance regression: the same
// seeded campaign produces DeepEqual fronts across repeated runs and across
// Workers=1/2/4, yields a non-trivial front (≥3 mutually non-dominated
// points), and every archived point's metrics are reproduced exactly by an
// independent Engine.Network evaluation of its decoded spec.
func TestRunDeterministicAcrossWorkers(t *testing.T) {
	var fronts []*Result
	for _, workers := range []int{1, 2, 4, 2} {
		e := newTestEngine(t, workers)
		res, err := Run(context.Background(), e, acceptanceOptions())
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		fronts = append(fronts, res)
	}
	for i, res := range fronts[1:] {
		if !reflect.DeepEqual(res, fronts[0]) {
			t.Fatalf("run %d differs from run 0:\n%+v\nvs\n%+v", i+1, res, fronts[0])
		}
	}

	res := fronts[0]
	if len(res.Front) < 3 {
		t.Fatalf("front has %d points, want >= 3", len(res.Front))
	}
	for i := range res.Front {
		for j := range res.Front {
			if i != j && dominates(objectives(&res.Front[i]), objectives(&res.Front[j])) {
				t.Fatalf("front point %d dominates point %d — not mutually non-dominated", i, j)
			}
		}
	}
	if res.Evaluated != res.Particles*res.Generations {
		t.Fatalf("evaluated %d candidates, want %d", res.Evaluated, res.Particles*res.Generations)
	}

	// Independent reproduction: rebuild each archived point's candidate by
	// hand from its spec and require the one-shot Engine.Network metrics to
	// match bit for bit.
	e := newTestEngine(t, 2)
	roster := map[string]ecc.Code{}
	for _, c := range e.Schemes() {
		roster[c.Name()] = c
	}
	for i, pt := range res.Front {
		topo := noc.Config{Kind: pt.Spec.Kind, Tiles: pt.Spec.Tiles, Columns: pt.Spec.Columns}
		if pt.Spec.Wavelengths > 0 {
			topo.Base = e.Config()
			topo.Base.Channel.Grid.Count = pt.Spec.Wavelengths
		}
		opts := noc.EvalOptions{TargetBER: 1e-11}
		if pt.Spec.DACBits > 0 {
			dac := manager.DAC{Bits: pt.Spec.DACBits, MaxOpticalW: manager.PaperDAC().MaxOpticalW}
			opts.DAC = &dac
		}
		codes := make([]ecc.Code, len(pt.Spec.Roster))
		for k, name := range pt.Spec.Roster {
			c, ok := roster[name]
			if !ok {
				t.Fatalf("front point %d names unknown scheme %q", i, name)
			}
			codes[k] = c
		}
		sub, err := engine.New(
			engine.WithConfig(core.DefaultConfig()),
			engine.WithSchemes(codes...),
			engine.WithWorkers(2),
		)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := sub.Network(context.Background(), topo, opts)
		if err != nil {
			t.Fatalf("front point %d (%s): %v", i, pt.Spec.String(), err)
		}
		if ref.EnergyPerBitJ != pt.EnergyPerBitJ ||
			ref.P99LatencySec != pt.P99LatencySec ||
			ref.SaturationInjectionBitsPerSec != pt.SaturationBitsPerSec {
			t.Fatalf("front point %d (%s) not reproduced:\narchived (%g, %g, %g)\nnetwork  (%g, %g, %g)",
				i, pt.Spec.String(),
				pt.EnergyPerBitJ, pt.P99LatencySec, pt.SaturationBitsPerSec,
				ref.EnergyPerBitJ, ref.P99LatencySec, ref.SaturationInjectionBitsPerSec)
		}
	}
}

// TestRunFrontNonDegrading pins the archive semantics per generation: with
// an uncapped archive, no point of generation g's front is dominated by any
// point of generation g−1's front — the front never backslides.
func TestRunFrontNonDegrading(t *testing.T) {
	e := newTestEngine(t, 2)
	opts := acceptanceOptions()
	opts.ArchiveCap = 1 << 20
	var prev []Point
	gens := 0
	opts.OnGeneration = func(gen int, front []Point) error {
		if len(front) == 0 {
			return errors.New("empty front")
		}
		for i := range front {
			for j := range prev {
				if dominates(objectives(&prev[j]), objectives(&front[i])) {
					t.Errorf("gen %d: front point %d dominated by previous front point %d", gen, i, j)
				}
			}
		}
		prev = front
		gens++
		return nil
	}
	if _, err := Run(context.Background(), e, opts); err != nil {
		t.Fatal(err)
	}
	if gens != opts.Generations {
		t.Fatalf("callback ran %d times, want %d", gens, opts.Generations)
	}
}

// TestArchiveProperties drives the archive with a deterministic pseudo-
// random point stream and checks its invariants: mutual non-dominance,
// capacity, and rejection of dominated or duplicate offers.
func TestArchiveProperties(t *testing.T) {
	const cap = 12
	a := &archive{cap: cap}
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 500; i++ {
		p := Point{
			Spec:                 CandidateSpec{Tiles: i},
			EnergyPerBitJ:        1 + rng.Float64(),
			P99LatencySec:        1 + rng.Float64(),
			SaturationBitsPerSec: 1 + rng.Float64(),
		}
		a.add(p)
		if len(a.points) > cap {
			t.Fatalf("archive grew to %d points past cap %d", len(a.points), cap)
		}
		for x := range a.points {
			for y := range a.points {
				if x != y && dominates(objectives(&a.points[x]), objectives(&a.points[y])) {
					t.Fatalf("after %d adds: archived point %d dominates point %d", i+1, x, y)
				}
			}
		}
	}
	if len(a.points) == 0 {
		t.Fatal("archive is empty after 500 adds")
	}

	// A point dominated by an archived one is rejected outright.
	base := a.points[0].clone()
	worse := base
	worse.EnergyPerBitJ *= 2
	worse.P99LatencySec *= 2
	worse.SaturationBitsPerSec /= 2
	if a.add(worse) {
		t.Fatal("archive accepted a dominated point")
	}
	// An objective-duplicate is rejected (first-come wins).
	dup := base.clone()
	dup.Spec.Tiles = -1
	if a.add(dup) {
		t.Fatal("archive accepted an objective-duplicate point")
	}
	// A dominating point evicts everything it dominates.
	better := base.clone()
	better.EnergyPerBitJ /= 2
	better.P99LatencySec /= 2
	better.SaturationBitsPerSec *= 2
	if !a.add(better) {
		t.Fatal("archive rejected a dominating point")
	}
	for i := range a.points {
		if reflect.DeepEqual(a.points[i].Spec, base.Spec) && objectives(&a.points[i]) == objectives(&base) {
			t.Fatal("dominated incumbent survived the dominating add")
		}
	}
}

// TestRunRejectsBadOptions pins the typed validation error.
func TestRunRejectsBadOptions(t *testing.T) {
	e := newTestEngine(t, 1)
	for _, opts := range []Options{
		{},                                     // missing BER
		{TargetBER: 0.7},                       // out of range
		{TargetBER: 1e-11, Particles: -1},      // negative swarm
		{TargetBER: 1e-11, Tiles: []int{1}},    // degenerate tiles
		{TargetBER: 1e-11, DACBits: []int{99}}, // impossible DAC
	} {
		if _, err := Run(context.Background(), e, opts); !errors.Is(err, engine.ErrInvalidInput) {
			t.Errorf("opts %+v: error = %v, want ErrInvalidInput", opts, err)
		}
	}
}
