package tune

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"photonoc/internal/core"
	"photonoc/internal/ecc"
	"photonoc/internal/engine"
	"photonoc/internal/manager"
	"photonoc/internal/netsim"
	"photonoc/internal/noc"
)

// The particle encoding: every knob is one continuous dimension in [0, 1],
// decoded into a discrete choice by even partition of the interval. The
// mesh column dimension indexes the divisors of the decoded tile count, so
// its meaning shifts with the tiles dimension — the PSO still pulls it
// smoothly because nearby positions decode to nearby divisors.
const (
	dimKind = iota
	dimTiles
	dimColumns
	dimWavelengths
	dimRoster
	dimDAC
	dims
)

// CandidateSpec is the decoded, human-readable identity of one evaluated
// design point: everything needed to rebuild its NetworkCandidate by hand
// and reproduce its metrics with an independent Engine.Network call.
type CandidateSpec struct {
	// Kind is the topology family.
	Kind noc.Kind
	// Tiles is the tile count.
	Tiles int
	// Columns is the mesh width (0 for non-mesh kinds).
	Columns int
	// Wavelengths is the wavelength-grid override (0 = the engine's grid).
	Wavelengths int
	// Roster is the scheme subset, registry names in roster order.
	Roster []string
	// DACBits is the DAC resolution (0 = exact analytic laser settings).
	DACBits int
}

// String renders the spec as the compact design label the CLI prints.
func (s *CandidateSpec) String() string {
	out := fmt.Sprintf("%s/%d", s.Kind, s.Tiles)
	if s.Kind == noc.Mesh && s.Columns > 0 {
		out += fmt.Sprintf("x%d", s.Columns)
	}
	if s.Wavelengths > 0 {
		out += fmt.Sprintf(" λ%d", s.Wavelengths)
	}
	if s.DACBits > 0 {
		out += fmt.Sprintf(" dac%d", s.DACBits)
	}
	return out + " [" + strings.Join(s.Roster, "; ") + "]"
}

// less orders specs lexicographically, the tie-break of the canonical front
// ordering.
func (s *CandidateSpec) less(o *CandidateSpec) bool {
	switch {
	case s.Kind != o.Kind:
		return s.Kind < o.Kind
	case s.Tiles != o.Tiles:
		return s.Tiles < o.Tiles
	case s.Columns != o.Columns:
		return s.Columns < o.Columns
	case s.Wavelengths != o.Wavelengths:
		return s.Wavelengths < o.Wavelengths
	case s.DACBits != o.DACBits:
		return s.DACBits < o.DACBits
	default:
		return strings.Join(s.Roster, ";") < strings.Join(o.Roster, ";")
	}
}

// space is the resolved design space of one campaign: the per-dimension
// choice lists plus the memoized per-choice artifacts (wavelength-override
// base configs, DAC programs, per-tile-count traffic matrices) shared by
// every candidate that decodes to the same choice.
type space struct {
	kinds       []noc.Kind
	tiles       []int
	wavelengths []int
	rosters     [][]ecc.Code
	dacBits     []int

	targetBER   float64
	objective   manager.Objective
	messageBits int
	pattern     netsim.Pattern
	hotNode     int
	hotFrac     float64

	engineCfg core.LinkConfig
	dacMaxW   float64

	bases    map[int]core.LinkConfig
	dacs     map[int]*manager.DAC
	traffic  map[int]noc.Matrix
	divisors map[int][]int
}

// pick partitions [0, 1] into n equal bins and returns the bin of x,
// clamping out-of-range positions to the boundary choices.
func pick(x float64, n int) int {
	if math.IsNaN(x) || x <= 0 {
		return 0
	}
	i := int(x * float64(n))
	if i >= n {
		i = n - 1
	}
	return i
}

// divisorsOf lists the positive divisors of t in ascending order, memoized
// per tile count — the mesh column choice list.
func (sp *space) divisorsOf(t int) []int {
	if d, ok := sp.divisors[t]; ok {
		return d
	}
	var d []int
	for c := 1; c <= t; c++ {
		if t%c == 0 {
			d = append(d, c)
		}
	}
	sp.divisors[t] = d
	return d
}

// baseFor returns the memoized base link configuration for a wavelength
// override (0 = zero value, which makes BuildNetwork adopt the engine's
// own configuration and keeps the common case on the engine's memo).
func (sp *space) baseFor(w int) core.LinkConfig {
	if w == 0 {
		return core.LinkConfig{}
	}
	if b, ok := sp.bases[w]; ok {
		return b
	}
	b := sp.engineCfg
	b.Channel.Grid.Count = w
	sp.bases[w] = b
	return b
}

// dacFor returns the memoized DAC program for a resolution (0 = nil, the
// exact analytic laser setting).
func (sp *space) dacFor(bits int) *manager.DAC {
	if bits == 0 {
		return nil
	}
	if d, ok := sp.dacs[bits]; ok {
		return d
	}
	d := &manager.DAC{Bits: bits, MaxOpticalW: sp.dacMaxW}
	sp.dacs[bits] = d
	return d
}

// trafficFor returns the campaign pattern's matrix for a tile count,
// memoized. Uniform traffic returns nil: the evaluation session serves its
// own memoized uniform matrix, keeping the default campaign allocation-free
// per candidate.
func (sp *space) trafficFor(tiles int) (noc.Matrix, error) {
	if sp.pattern == netsim.Uniform {
		return nil, nil
	}
	if m, ok := sp.traffic[tiles]; ok {
		return m, nil
	}
	raw, err := sp.pattern.Matrix(tiles, sp.hotNode, sp.hotFrac)
	if err != nil {
		return nil, err
	}
	m := noc.Matrix(raw)
	sp.traffic[tiles] = m
	return m, nil
}

// decode maps a particle position to its design spec and the evaluation
// candidate the engine batch runs. Positions that decode to a topology the
// wavelength grid cannot carry still decode — the engine reports them as
// typed per-candidate errors and the campaign treats them as infeasible.
func (sp *space) decode(pos []float64) (CandidateSpec, engine.NetworkCandidate, error) {
	spec := CandidateSpec{
		Kind:        sp.kinds[pick(pos[dimKind], len(sp.kinds))],
		Tiles:       sp.tiles[pick(pos[dimTiles], len(sp.tiles))],
		Wavelengths: sp.wavelengths[pick(pos[dimWavelengths], len(sp.wavelengths))],
		DACBits:     sp.dacBits[pick(pos[dimDAC], len(sp.dacBits))],
	}
	if spec.Kind == noc.Mesh {
		div := sp.divisorsOf(spec.Tiles)
		spec.Columns = div[pick(pos[dimColumns], len(div))]
	}
	roster := sp.rosters[pick(pos[dimRoster], len(sp.rosters))]
	spec.Roster = make([]string, len(roster))
	for i, c := range roster {
		spec.Roster[i] = c.Name()
	}

	traffic, err := sp.trafficFor(spec.Tiles)
	if err != nil {
		return CandidateSpec{}, engine.NetworkCandidate{}, err
	}
	cand := engine.NetworkCandidate{
		Topology: noc.Config{
			Kind:    spec.Kind,
			Tiles:   spec.Tiles,
			Columns: spec.Columns,
			Base:    sp.baseFor(spec.Wavelengths),
		},
		Schemes: roster,
		Opts: noc.EvalOptions{
			TargetBER:   sp.targetBER,
			Objective:   sp.objective,
			Traffic:     traffic,
			MessageBits: sp.messageBits,
			DAC:         sp.dacFor(spec.DACBits),
		},
	}
	return spec, cand, nil
}

// defaultRosters builds the default roster subsets from an engine roster:
// the full roster plus one single-scheme roster per code, so the search can
// trade the manager's full selection freedom against fixed-scheme designs.
func defaultRosters(codes []ecc.Code) [][]ecc.Code {
	out := make([][]ecc.Code, 0, len(codes)+1)
	out = append(out, codes)
	for i := range codes {
		out = append(out, codes[i:i+1])
	}
	return out
}

// sortedInts returns a sorted copy without duplicates.
func sortedInts(in []int) []int {
	out := append([]int(nil), in...)
	sort.Ints(out)
	j := 0
	for i, v := range out {
		if i == 0 || v != out[i-1] {
			out[j] = v
			j++
		}
	}
	return out[:j]
}
