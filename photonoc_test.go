package photonoc

import (
	"context"
	"errors"
	"testing"

	"photonoc/internal/manager"
)

func TestFacadeQuickstartFlow(t *testing.T) {
	// The README's quick-start must work through the façade alone.
	cfg := DefaultConfig()
	evU, err := cfg.Evaluate(Uncoded64(), 1e-11)
	if err != nil {
		t.Fatal(err)
	}
	ev74, err := cfg.Evaluate(Hamming74(), 1e-11)
	if err != nil {
		t.Fatal(err)
	}
	if !evU.Feasible || !ev74.Feasible {
		t.Fatal("paper operating points must be feasible")
	}
	if ratio := ev74.LaserPowerW / evU.LaserPowerW; ratio > 0.55 {
		t.Errorf("H(7,4) should cut laser power roughly in half, got ratio %.2f", ratio)
	}
}

func TestFacadeSchemeRosters(t *testing.T) {
	if got := len(PaperSchemes()); got != 3 {
		t.Errorf("paper roster size %d", got)
	}
	if got := len(ExtendedSchemes()); got < 6 {
		t.Errorf("extended roster size %d", got)
	}
	if Hamming7164().N() != 71 || Hamming7164().K() != 64 {
		t.Error("H(71,64) accessor wrong")
	}
}

func TestFacadeManager(t *testing.T) {
	cfg := DefaultConfig()
	m, err := NewManager(&cfg, PaperSchemes(), PaperDAC())
	if err != nil {
		t.Fatal(err)
	}
	d, err := m.Configure(Requirements{TargetBER: 1e-11, Objective: MinEnergy})
	if err != nil {
		t.Fatal(err)
	}
	if d.Eval.Code.Name() != "H(71,64)" {
		t.Errorf("façade manager picked %s", d.Eval.Code.Name())
	}
	// The no-feasible-scheme error surfaces through the façade types.
	_, err = m.Configure(Requirements{TargetBER: 1e-12, MaxCT: 1})
	if !errors.Is(err, manager.ErrNoFeasibleScheme) {
		t.Errorf("want ErrNoFeasibleScheme, got %v", err)
	}
}

func TestFacadeSimulation(t *testing.T) {
	cfg := DefaultSimConfig()
	cfg.Messages = 500
	res, err := RunSimulation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Messages != 500 {
		t.Errorf("messages = %d", res.Messages)
	}
}

func TestFacadeTable1(t *testing.T) {
	rows, totals, err := SynthesizeTable1()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 12 || len(totals) != 6 {
		t.Errorf("table1 shape %d/%d", len(rows), len(totals))
	}
}

func TestFacadeValidateMC(t *testing.T) {
	eng, err := New(WithSchemes(PaperSchemes()...))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	res, err := eng.ValidateMC(ctx, Hamming7164(), 1e-2, MCOptions{Frames: 50_000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Code != "H(71,64)" || res.Frames < 50_000 || res.FrameErrors == 0 {
		t.Errorf("unexpected MC result: %+v", res)
	}
	// The analytic FER (exact for a bounded-distance decoder) must sit
	// inside a widened Wilson band.
	if res.ExpectedFER < res.FERLow*0.8 || res.ExpectedFER > res.FERHigh*1.2 {
		t.Errorf("analytic FER %g far outside CI [%g, %g]", res.ExpectedFER, res.FERLow, res.FERHigh)
	}
	grid, err := eng.ValidateGrid(ctx, nil, []float64{1e-2}, MCOptions{Frames: 10_000, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(grid) != len(PaperSchemes()) {
		t.Errorf("grid returned %d results, want %d", len(grid), len(PaperSchemes()))
	}
}
