// Package photonoc reproduces "Energy and Performance Trade-off in
// Nanophotonic Interconnects using Coding Techniques" (Killian, Chillet,
// Le Beux, Sentieys, Pham, O'Connor — DAC 2017) as a self-contained Go
// library.
//
// The paper's idea: adding a cheap Hamming code in the electrical domain
// relaxes the SNR an optical network-on-chip link needs for a target BER,
// so the on-chip laser — the dominant, thermally-degraded power consumer —
// can be driven at roughly half the power, at the price of a longer
// transmission (CT = n/k).
//
// # The Engine API
//
// The package's entry point is the Engine: a concurrent, memoizing solver
// over one link configuration and one scheme roster, built with functional
// options:
//
//	eng, err := photonoc.New(
//		photonoc.WithConfig(photonoc.DefaultConfig()),
//		photonoc.WithSchemes(photonoc.PaperSchemes()...),
//		photonoc.WithWorkers(4),
//		photonoc.WithCache(1024),
//	)
//	if err != nil { ... }
//
//	// Batch: fan (scheme × BER) points across the worker pool; results
//	// arrive in deterministic order, identical to the sequential path.
//	evs, err := eng.Sweep(ctx, nil, []float64{1e-9, 1e-11})
//
//	// Streaming: render incrementally as points are solved.
//	for r := range eng.SweepStream(ctx, nil, bers) {
//		if r.Err != nil { ... }
//		fmt.Println(r.Evaluation.Code.Name(), r.Evaluation.LaserPowerW)
//	}
//
//	// Runtime manager and traffic simulator share the Engine's cache.
//	mgr, err := eng.Manager(photonoc.PaperDAC())
//	res, err := eng.Simulate(ctx, photonoc.DefaultSimConfig())
//
// Solved operating points are memoized in an LRU cache keyed by
// (configuration fingerprint, scheme, target BER), so repeated manager
// decisions and overlapping sweeps never re-solve the optical budget.
// All Engine calls take a context and honor cancellation; API-boundary
// failures are typed (ErrInvalidConfig, ErrInvalidInput, ErrInfeasible).
//
// The earlier flat API — cfg.Evaluate, cfg.Sweep, NewManager,
// RunSimulation — remains available; the one-shot forms stay the reference
// implementation the Engine is tested against, and NewManager /
// RunSimulation are deprecated thin wrappers over the same internals.
//
// # Monte-Carlo validation
//
// The analytic models are cross-checked by direct simulation through the
// bit-sliced Monte-Carlo engine (internal/mc): 64 independent frames are
// transposed into lane-major []uint64 words — sliced word i carries
// codeword bit i of all 64 frames — so each XOR/AND/popcount of the
// encode → BSC → decode loop advances 64 trials at once, with channel
// errors drawn by geometric gap sampling (O(expected flips)) and syndromes
// resolved through a dense table. Codes without a sliced kernel (BCH) run
// on a scalar per-frame fallback through the same harness.
//
//	// One operating point: H(71,64) at raw flip probability 1e-3,
//	// 10M frames, stop early at 2% relative FER precision.
//	res, err := eng.ValidateMC(ctx, photonoc.Hamming7164(), 1e-3,
//		photonoc.MCOptions{Frames: 10_000_000, TargetRelErr: 0.02, Seed: 1})
//	fmt.Println(res.BER, res.BERLow, res.BERHigh, res.FramesPerSec)
//
//	// A whole validation grid through the sweep worker pool.
//	grid, err := eng.ValidateGrid(ctx, nil, []float64{1e-2, 1e-3},
//		photonoc.MCOptions{Frames: 1_000_000, Seed: 1})
//
// Runs are deterministic by construction: the volume is split over
// independent per-shard RNG streams derived from the root seed, so a fixed
// (Seed, Shards) pair reproduces the exact counts regardless of the Workers
// setting; early stopping and streamed Progress snapshots act on aggregate
// counts at round barriers, inside the same contract. The trade-off against
// the analytic plans: plans are instant and exact for frame error rates of
// bounded-distance decoders, while ValidateMC measures the true decoder
// (miscorrection, detection) with Wilson confidence intervals at tens of
// millions of frames per second per core.
//
// # The network layer
//
// internal/noc scales the single calibrated channel to whole topologies —
// the network-level evaluation the paper defers to future work. A
// NoCConfig names a topology family (bus, crossbar, ring, mesh) and a tile
// count; Engine.BuildNetwork compiles it into links with per-link waveguide
// lengths (distinct loss budgets), a wavelength-allocation pass that
// partitions the shared WavelengthGrid so no wavelength is reused on a
// shared waveguide, and a routing table covering every (src, dst) pair:
//
//	topo := photonoc.NoCConfig{Kind: photonoc.NoCMesh, Tiles: 64}
//	res, err := eng.Network(ctx, topo, photonoc.NoCEvalOptions{
//		TargetBER: 1e-11, Objective: photonoc.MinEnergy,
//	})
//	fmt.Println(res.SchemeUse, res.EnergyPerBitJ, res.P99LatencySec)
//
//	// Batch and streaming BER sweeps, deterministic across worker counts.
//	results, err := eng.NetworkSweep(ctx, topo, bers, opts)
//	for r := range eng.NetworkSweepStream(ctx, topo, bers, opts) { ... }
//
// Every link's (scheme, target BER) solves fan across the Engine's worker
// pool, keyed in the LRU by the link's configuration fingerprint — links
// sharing a compiled plan (every bus link, every repeated mesh position)
// reuse each other's solves. Scheme selection per link follows the runtime
// manager's rule exactly, and a 1-waveguide bus over the paper topology
// reproduces the single-link sweep bit for bit. Traffic matrices come from
// the netsim patterns (Pattern.Matrix) or recorded traces (Trace.Matrix);
// the aggregation derives per-link utilization, saturation throughput
// (bisection over the injection rate), M/D/1 latency percentiles and the
// network energy budget with standing lasers and activity-scaled
// modulator/interface power.
//
// The analytic aggregates are cross-validated by the network-scale
// discrete-event simulator, Engine.SimulateNetwork: Poisson injection
// sampled from the same traffic matrix, XY multi-hop forwarding over the
// same routing table, one MWSR server per link serializing transfers at
// the link's decided capacity, with token arbitration and waveguide
// flight charged per hop as pipeline latency. The per-link scheme/DAC
// decisions ARE noc.Decide's output solved through the shared LRU, so
// they are bit-identical to the analytic Result's; the simulation core is
// sequential and seeded, so a fixed seed reproduces every count and
// percentile across runs and across Worker counts.
//
//	sim, err := eng.SimulateNetwork(ctx, topo, photonoc.NoCSimOptions{
//		TargetBER: 1e-11, Objective: photonoc.MinEnergy,
//		Messages: 100000, Seed: 1, // rate 0 = half the analytic saturation
//	})
//	fmt.Println(sim.MeanLatencySec, sim.P99LatencySec, sim.Dropped)
//
// On the degenerate uniform bus at half saturation the two agree to
// within 1% utilization and well under 10% mean latency (the pinned
// cross-validation test); past the analytic saturation rate the DES shows
// what the Saturated flag means — queues growing without bound, or a
// measured drop rate under MaxQueueDepth-bounded buffers — and its p99
// exposes the contention tail the per-pair M/D/1 fold cannot see. See
// examples/noccontention for the whole sweep.
//
// # The autotuner fast path
//
// Design-space search evaluates long chains of neighboring candidates —
// each step mutates one knob and keeps the rest. Three layers make that
// workload cheap. A NoCEvalSession owns every buffer the noc-layer
// Decide/Aggregate pass needs, so a warmed session evaluation allocates
// nothing (pinned by an allocation-regression test and a CI gate). A
// NoCSession (Engine.NewNetworkSession) adds incremental re-evaluation: it
// diffs each candidate's links against the previous candidate by
// configuration fingerprint and re-solves only changed (link, scheme, BER)
// cells, copying the rest forward without touching the cache
// (CacheStats.SessionReuses counts them) — bit-identical to a cold
// evaluation by construction, property-tested across topology kinds and
// mutation sequences. Engine.NetworkBatch / NetworkBatchStream fan a
// []NoCCandidate population over the worker pool in contiguous chunks so
// each worker's session still sees neighbors, returning deep-copied
// results in population order, deterministic across worker counts:
//
//	cands := []photonoc.NoCCandidate{
//		{Topology: topo, Opts: photonoc.NoCEvalOptions{TargetBER: 1e-11}},
//		{Topology: topo, Opts: photonoc.NoCEvalOptions{TargetBER: 1e-9}},
//	}
//	results, err := eng.NetworkBatch(ctx, cands)
//
// The tracked noc_batch metric in BENCH_cold_sweep.json pins the speedup
// (~5.8x over per-candidate cold evaluation on a 64-candidate
// mutate-one-knob chain); POST /v1/noc/batch serves the same path over
// NDJSON through the daemon.
//
// # Autotuner campaigns
//
// Engine.Tune closes the search loop over that fast path: a deterministic
// multi-objective particle swarm (Clerc constriction PSO) over the joint
// design space — topology family, tile count, mesh shape, wavelength
// budget, scheme-roster subset, DAC resolution — archived as a bounded
// Pareto front over (energy/bit, p99 latency, saturation throughput) with
// crowding-distance pruning:
//
//	res, err := eng.Tune(ctx, photonoc.TuneOptions{
//		TargetBER: 1e-11, Seed: 7, Particles: 8, Generations: 10,
//	})
//	for _, p := range res.Front {
//		fmt.Println(p.Spec.String(), p.EnergyPerBitJ, p.P99LatencySec)
//	}
//
// Each generation evaluates the whole swarm as one Engine.NetworkBatch
// population, so neighboring particles ride the incremental sessions.
// Campaigns are bit-identical across Engine worker counts from the root
// seed; infeasible candidates are counted and skipped, never fatal; and
// every archived point's Spec rebuilds a candidate whose independent
// Engine.Network evaluation reproduces its metrics exactly. cmd/onoctune
// drives campaigns from the command line (table or JSON, locally or
// against a daemon), and POST /v1/noc/tune streams one front snapshot per
// generation as NDJSON, resumable via ?start_index.
//
// # Performance model
//
// Solves come in two costs. A warm solve is an LRU cache hit (microseconds).
// A cold solve runs the physics through a precompute-then-evaluate pipeline
// compiled once per configuration generation: each code's FER plan
// (ecc.PlanFor — cached ln C(n,i), incremental binomial-tail recurrence,
// Newton inversion with the analytic d lnBER/d lnp), each channel's LinkPlan
// (onoc — per-wavelength budget, crosstalk and eye fraction snapshotted, one
// laser inversion for the worst wavelength only), bundled by
// core.LinkConfig.Compile and held by the Engine. Engine.CacheStats reports
// cold-solve counts and cumulative timing next to the hit/miss accounting.
// The per-call helpers remain as thin wrappers over the plans; planned
// inversions agree with the historical bisection to better than 1e-12
// relative. BENCH_cold_sweep.json tracks the measured trajectory
// (regenerate with `onocbench -json`); see README "Performance model".
//
// # Subsystems
//
// The package is a façade over the internal subsystems:
//
//   - internal/engine     — the concurrent batch evaluator: worker pool,
//     LRU memo cache, typed errors (the machinery behind Engine)
//   - internal/mc         — the bit-sliced Monte-Carlo validation engine:
//     sharded deterministic RNG streams, streaming Wilson intervals
//     (the machinery behind ValidateMC / ValidateGrid)
//   - internal/ecc        — Hamming(7,4), shortened Hamming(71,64), SECDED,
//     BCH, repetition and parity codes with the paper's BER models (Eq. 1-3)
//   - internal/photonics  — micro-ring (Fig. 3) and thermally-limited VCSEL
//     (Fig. 4) device models
//   - internal/onoc       — the MWSR channel: link budget, crosstalk and the
//     minimum-laser-power solver (Eq. 4)
//   - internal/core       — the joint ECC + laser-power configurator and the
//     experiment harnesses for Figures 5, 6a, 6b
//   - internal/synth      — gate-level netlists, timing and power of the
//     electrical interfaces (Table I)
//   - internal/serdes     — the bit-true encode/serialize/decode path
//   - internal/noise      — analog OOK channel and importance-sampled BER
//     validation (the coded Monte-Carlo path runs on internal/mc)
//   - internal/manager    — the runtime link manager with its laser DAC
//   - internal/netsim     — discrete-event traffic simulators: the single
//     calibrated link with its per-transfer manager (the paper's
//     future-work evaluation) and the whole-network simulator that
//     cross-validates the analytic aggregates (Engine.SimulateNetwork)
//   - internal/noc        — network-scale topologies (bus, crossbar, ring,
//     mesh): wavelength allocation, routing, traffic-matrix aggregation
//     (the machinery behind Engine.Network / NetworkSweep)
//   - internal/tune       — the design-space autotuner: deterministic
//     multi-objective PSO over topology × code × DAC with a
//     crowding-pruned Pareto archive (the machinery behind Engine.Tune,
//     cmd/onoctune and POST /v1/noc/tune)
//   - internal/onocd      — the HTTP/JSON serving layer (cmd/onocd): wire
//     DTOs over the Engine, a Go client that is itself a core.Evaluator,
//     and the closed-loop load generator (cmd/onocload); the daemon adds
//     admission control, per-request deadlines, singleflight-coalesced cold
//     solves over the sharded LRU, Prometheus-text metrics and SIGHUP hot
//     reload; the client retries retryable failures with backoff behind a
//     circuit breaker and resumes interrupted NDJSON streams via
//     ?start_index
//   - internal/apierr     — typed-error ↔ stable JSON error envelope and
//     HTTP status mapping, shared by the daemon and the client
//   - internal/resilience — context-aware retry with capped exponential
//     backoff and full jitter, plus a three-state circuit breaker
//   - internal/faultinject — deterministic seeded fault injection (latency,
//     429/503 envelopes, connection resets, mid-stream truncation) behind
//     onocd -fault-rate and the onocload chaos gates
//   - internal/obs        — the telemetry layer: structured logging on
//     log/slog, W3C trace-context propagation (traceparent parse/generate,
//     request-scoped spans), and per-request engine-work attribution; the
//     daemon threads it through access logs, /metrics and /statusz, the
//     client joins its retry logs to the daemon's by trace ID, and the
//     engine's Observer seam (WithObserver) feeds it without allocating
//     when unused
//
// The benchmark harness in bench_test.go regenerates every table and figure
// of the paper; engine_bench_test.go compares the sequential and concurrent
// sweep paths. See README.md for a quickstart and the migration guide.
package photonoc
