// Package photonoc reproduces "Energy and Performance Trade-off in
// Nanophotonic Interconnects using Coding Techniques" (Killian, Chillet,
// Le Beux, Sentieys, Pham, O'Connor — DAC 2017) as a self-contained Go
// library.
//
// The paper's idea: adding a cheap Hamming code in the electrical domain
// relaxes the SNR an optical network-on-chip link needs for a target BER,
// so the on-chip laser — the dominant, thermally-degraded power consumer —
// can be driven at roughly half the power, at the price of a longer
// transmission (CT = n/k).
//
// The package is a façade over the internal subsystems:
//
//   - internal/ecc        — Hamming(7,4), shortened Hamming(71,64), SECDED,
//     BCH, repetition and parity codes with the paper's BER models (Eq. 1-3)
//   - internal/photonics  — micro-ring (Fig. 3) and thermally-limited VCSEL
//     (Fig. 4) device models
//   - internal/onoc       — the MWSR channel: link budget, crosstalk and the
//     minimum-laser-power solver (Eq. 4)
//   - internal/core       — the joint ECC + laser-power configurator and the
//     experiment harnesses for Figures 5, 6a, 6b
//   - internal/synth      — gate-level netlists, timing and power of the
//     electrical interfaces (Table I)
//   - internal/serdes     — the bit-true encode/serialize/decode path
//   - internal/noise      — Monte-Carlo and importance-sampled BER validation
//   - internal/manager    — the runtime link manager with its laser DAC
//   - internal/netsim     — a discrete-event traffic simulator over the
//     interconnect (the paper's future-work evaluation)
//
// Quick start:
//
//	cfg := photonoc.DefaultConfig()
//	ev, err := cfg.Evaluate(photonoc.Hamming74(), 1e-11)
//	// ev.LaserPowerW ≈ 6.2 mW vs 13.7 mW uncoded — the paper's ≈50% cut.
//
// The benchmark harness in bench_test.go regenerates every table and figure
// of the paper; see DESIGN.md for the experiment index and EXPERIMENTS.md
// for paper-versus-measured results.
package photonoc
